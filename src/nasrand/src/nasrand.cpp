#include "sacpp/nasrand/nasrand.hpp"

#include <cmath>

#include "sacpp/common/error.hpp"

namespace sacpp::nasrand {

namespace {

// Split constants: r23 = 2^-23, t23 = 2^23, r46 = 2^-46, t46 = 2^46.
constexpr double r23 = 1.0 / 8388608.0;
constexpr double t23 = 8388608.0;
constexpr double r46 = r23 * r23;
constexpr double t46 = t23 * t23;

// Truncate toward zero, like Fortran AINT on the non-negative values
// appearing here.
inline double aint(double v) { return std::trunc(v); }

}  // namespace

double randlc(double* x, double a) {
  // Break a and x into two 23-bit halves: a = 2^23*a1 + a2, x = 2^23*x1 + x2.
  const double t1a = r23 * a;
  const double a1 = aint(t1a);
  const double a2 = a - t23 * a1;

  const double t1x = r23 * (*x);
  const double x1 = aint(t1x);
  const double x2 = *x - t23 * x1;

  // z = lower 23 bits of (a1*x2 + a2*x1); then combine with a2*x2 and keep
  // the lower 46 bits of the full product.
  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = aint(r23 * t1);
  const double z = t1 - t23 * t2;
  const double t3 = t23 * z + a2 * x2;
  const double t4 = aint(r46 * t3);
  *x = t3 - t46 * t4;
  return r46 * (*x);
}

void vranlc(double* x, double a, std::span<double> out) {
  const double t1a = r23 * a;
  const double a1 = aint(t1a);
  const double a2 = a - t23 * a1;

  double xv = *x;
  for (double& o : out) {
    const double t1x = r23 * xv;
    const double x1 = aint(t1x);
    const double x2 = xv - t23 * x1;
    const double t1 = a1 * x2 + a2 * x1;
    const double t2 = aint(r23 * t1);
    const double z = t1 - t23 * t2;
    const double t3 = t23 * z + a2 * x2;
    const double t4 = aint(r46 * t3);
    xv = t3 - t46 * t4;
    o = r46 * xv;
  }
  *x = xv;
}

double ipow46(double a, std::int64_t exponent) {
  SACPP_REQUIRE(exponent >= 0, "ipow46 exponent must be non-negative");
  // Square-and-multiply entirely in the 46-bit modular domain, using randlc
  // as the modular-product primitive (NPB `power` does the same).
  double result = 1.0;
  double base = a;
  std::int64_t n = exponent;
  while (n > 0) {
    if (n % 2 == 1) {
      randlc(&result, base);  // result <- base * result mod 2^46
    }
    double sq = base;
    randlc(&sq, base);  // sq <- base^2 mod 2^46
    base = sq;
    n /= 2;
  }
  return result;
}

std::uint64_t randlc_exact(std::uint64_t* x, std::uint64_t a) {
  constexpr std::uint64_t mask46 = (1ULL << 46) - 1;
  const unsigned __int128 prod =
      static_cast<unsigned __int128>(*x) * static_cast<unsigned __int128>(a);
  *x = static_cast<std::uint64_t>(prod) & mask46;
  return *x;
}

}  // namespace sacpp::nasrand
