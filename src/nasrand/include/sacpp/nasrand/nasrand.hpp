#pragma once
// The NAS Parallel Benchmarks pseudo-random number generator.
//
// NPB generates its input data with the linear congruential generator
//
//   x_{k+1} = a * x_k  (mod 2^46),   r_k = x_k * 2^-46
//
// with a = 5^13 = 1220703125 and seed x_0 = 314159265.  The reference
// implementation (randlc/vranlc in the NPB Fortran sources) performs the
// 46-bit modular product in double precision by splitting operands into
// 23-bit halves; we reproduce that algorithm bit-exactly so the MG input
// field matches the benchmark definition, and additionally provide an exact
// 128-bit integer implementation used by the tests to validate the
// floating-point one.
//
// References: Bailey et al., "The NAS Parallel Benchmarks", RNR-94-007.

#include <cstdint>
#include <span>

namespace sacpp::nasrand {

// Default multiplier and seed used by all NPB kernels.
inline constexpr double kDefaultMultiplier = 1220703125.0;  // 5^13
inline constexpr double kDefaultSeed = 314159265.0;

// Advance *x once (x <- a*x mod 2^46) and return the uniform deviate
// x * 2^-46 in (0, 1).  Port of NPB randlc.
double randlc(double* x, double a);

// Fill `out` with the next out.size() deviates, advancing *x accordingly.
// Port of NPB vranlc; equivalent to calling randlc in a loop but kept
// separate because NPB fills MG's input field row-wise with it.
void vranlc(double* x, double a, std::span<double> out);

// a^exponent mod 2^46, as a double holding the 46-bit integer result.
// Used to jump the sequence to an arbitrary offset (NPB `power`).
double ipow46(double a, std::int64_t exponent);

// Exact reference implementation on 128-bit integers (tests only; the
// benchmarks use the double-precision port above).
std::uint64_t randlc_exact(std::uint64_t* x, std::uint64_t a);

// Convenience stateful wrapper around randlc with sequence jumping.
class NasRandom {
 public:
  explicit NasRandom(double seed = kDefaultSeed,
                     double multiplier = kDefaultMultiplier)
      : x_(seed), a_(multiplier) {}

  // Next uniform deviate in (0, 1).
  double next() { return randlc(&x_, a_); }

  // Fill a span with consecutive deviates.
  void fill(std::span<double> out) { vranlc(&x_, a_, out); }

  // Jump the state forward by `count` steps in O(log count).
  void jump(std::int64_t count) {
    const double an = ipow46(a_, count);
    randlc(&x_, an);  // x <- an * x mod 2^46 (discard the deviate)
  }

  // Raw 46-bit state (as a double-held integer).
  double state() const { return x_; }

 private:
  double x_;
  double a_;
};

}  // namespace sacpp::nasrand
