#pragma once
// An in-process message-passing world: the MPI subset NPB's MG-MPI needs.
//
// The paper's second future-work item asks for "a direct comparison with
// the MPI-based parallel reference implementation of NAS-MG".  We have no
// cluster (or MPI installation) in this environment, so the substrate is an
// SPMD runtime over threads: World spawns one thread per rank, each running
// the same program, communicating exclusively through the Comm handle —
// blocking tagged point-to-point messages and the collectives MG needs
// (barrier, allreduce, broadcast, gather/scatter to a root).  The
// programming model is message passing with disjoint address spaces by
// convention: ranks share no data except through Comm.
//
// Message counts and byte volumes are tallied per world; the distributed
// machine model uses the same communication structure analytically.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "sacpp/common/error.hpp"
#include "sacpp/common/lockorder.hpp"
#include "sacpp/msg/transport.hpp"

namespace sacpp::msg {

class World;

// Reserved tags of the transport-backed collectives (World routes its
// barrier/allreduce over point-to-point traffic when bound to a Transport;
// the in-process world keeps its shared-memory implementations).  All are
// <= -1000 so collective_tag() exempts them from mailbox caps, and
// net::classify_tag (src/net/session.hpp) can label them at the frame layer.
inline constexpr int kBarrierGatherTag = -1003;   // leaf -> root token
inline constexpr int kBarrierReleaseTag = -1004;  // root -> leaf release
inline constexpr int kReduceContribTag = -1005;   // leaf -> root contribution
inline constexpr int kReduceResultTag = -1006;    // root -> leaf result

// Per-rank communicator handle (only valid inside World::run).
class Comm {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  // Blocking tagged point-to-point.  Matching is by (source, tag); message
  // order between the same (source, tag) pair is preserved.  The received
  // message must have exactly out.size() elements.
  void send(int dest, int tag, std::span<const double> data);
  void recv(int source, int tag, std::span<double> out);

  // Exchange with two (possibly equal) partners without deadlock.
  void sendrecv(int dest, std::span<const double> out_data, int source,
                std::span<double> in_data, int tag);

  // Non-blocking receive: returns immediately with a request handle; the
  // message is copied into `out` when it arrives (possibly inside wait()).
  // `out` must stay alive until the request completes.  Sends are buffered
  // and complete immediately in this substrate, so isend == send.
  class Request {
   public:
    // Block until the message has been delivered into the buffer.
    void wait();
    // True once delivered (non-blocking probe).
    bool test();

   private:
    friend class Comm;
    Request(World* world, int self, int source, int tag,
            std::span<double> out)
        : world_(world), self_(self), source_(source), tag_(tag), out_(out) {}
    World* world_;
    int self_;
    int source_;
    int tag_;
    std::span<double> out_;
    bool done_ = false;
  };

  Request irecv(int source, int tag, std::span<double> out);

  // Buffered-asynchronous send: returns once the payload is copied out of
  // `data`; wire transmission proceeds concurrently (on the transport's
  // event loop for a socket-backed world, immediately for mailboxes).  The
  // overlapped halo exchange in mg_mpi pairs this with irecv to hide
  // communication behind interior compute.
  void isend(int dest, int tag, std::span<const double> data) {
    send(dest, tag, data);
  }

  // Reset the enclosing world's traffic counters (rank 0 calls this at the
  // start of the timed section; for a transport-backed world the wire-level
  // baseline is captured too).
  void reset_world_stats();

  // Collectives over all ranks.
  void barrier();
  double allreduce_sum(double value);
  double allreduce_max(double value);
  void broadcast(int root, std::span<double> data);

  // Root collects equally sized blocks from every rank (rank order); the
  // inverse scatters them.  `block` is this rank's contribution / slot;
  // `all` (root only) must hold size() * block.size() elements.
  void gather(int root, std::span<const double> block, std::span<double> all);
  void scatter(int root, std::span<const double> all, std::span<double> block);

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;
};

struct WorldStats {
  std::uint64_t messages = 0;  // point-to-point sends
  std::uint64_t bytes = 0;     // point-to-point payload bytes
  std::uint64_t barriers = 0;
  std::uint64_t reductions = 0;
  std::uint64_t send_blocked = 0;  // sends that hit mailbox backpressure
  // Directional traffic accounting (exported through the Prometheus
  // collector bridge as sacpp_msg_* totals; docs/net.md#counters).  For the
  // in-process world both directions of a hop are local copies, so the two
  // byte counters agree; for a transport-backed world they are this rank's
  // wire-level payload traffic, and `reconnects` counts the transport's
  // connect retries and re-establishments.
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t reconnects = 0;
};

// The shared SPMD world.  Construct with the rank count, then run() one or
// more SPMD programs; each run spawns `ranks` threads and joins them.
//
// Mailboxes are unbounded by default (the historical buffered-send
// semantics mg_mpi relies on).  Under service load a fast producer paired
// with a slow consumer would grow a mailbox without limit, so a world may
// opt into bounded mailboxes (`max_mailbox_messages`): a send to a full
// mailbox blocks until the consumer drains below the cap — classic
// credit-style backpressure.  Collectives use reserved tags and are exempt
// from the cap (they are self-limiting: at most one in flight per rank), so
// bounding point-to-point traffic cannot deadlock a barrier.
class World {
 public:
  explicit World(int ranks, std::size_t max_mailbox_messages = 0);

  // A world bound to a real interconnect: this process IS one rank
  // (transport.rank()) of transport.size(); peers are other OS processes.
  // run() executes fn exactly once, on the local rank, and every remote
  // send/recv routes through the transport (self-traffic stays in a local
  // mailbox).  Collectives run over point-to-point traffic with reserved
  // tags, bit-identical in result to the in-process implementations.  The
  // transport must outlive the world.
  explicit World(Transport& transport);

  ~World();

  int size() const noexcept { return ranks_; }

  // The rank this process plays (always valid; 0-based; the in-process
  // world runs every rank, so the notion only matters when distributed()).
  int local_rank() const noexcept { return local_rank_; }
  bool distributed() const noexcept { return transport_ != nullptr; }

  // Execute fn(comm) on every local rank concurrently (one thread per rank
  // in-process, exactly one for a transport-bound world); rethrows the
  // first rank failure after all threads joined.
  void run(const std::function<void(Comm&)>& fn);

  // Traffic counters; for a transport-bound world the wire-level transport
  // stats (frames, directional bytes, reconnects) are merged in, minus the
  // baseline captured at the last reset_stats().
  WorldStats stats() const;
  void reset_stats();

  // Messages currently queued in rank `self`'s mailbox (tests assert the
  // bounded-mailbox cap holds under a slow consumer).
  std::size_t mailbox_depth(int self) const;

  // The bounded-mailbox cap (0 = unbounded).
  std::size_t mailbox_capacity() const noexcept { return mailbox_cap_; }

  // Internal (used by Comm and Comm::Request): blocking and non-blocking
  // message matching for rank `self`.
  void receive(int self, int source, int tag, std::span<double> out);
  bool try_receive(int self, int source, int tag, std::span<double> out);

 private:
  friend class Comm;

  struct Message {
    int source;
    int tag;
    std::vector<double> payload;
  };

  struct Mailbox {
    // Tracked for the lock-order analyzer; every mailbox shares one graph
    // node ("msg.mailbox"), so the cvs are the _any flavour.
    TrackedMutex mutex{"msg.mailbox"};
    std::condition_variable_any arrived;
    std::condition_variable_any drained;  // backpressured senders wait here
    std::list<Message> messages;
  };

  void deliver(int source, int dest, int tag, std::span<const double> data);
  void barrier_wait();
  double reduce(int rank, double value, bool maximum);

  // Transport-mode collectives (flat gather-to-root over reserved tags; the
  // root accumulates in rank order so results are bit-identical to the
  // in-process reduce_slots_ implementation).
  void barrier_transport();
  double reduce_transport(double value, bool maximum);

  // Wake every mailbox waiter so blocked receives/sends re-check the
  // running/finished state (called when a rank's program returns and when
  // run() completes).
  void wake_all_mailboxes();

  int ranks_;
  std::size_t mailbox_cap_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Lifecycle: receives and backpressured sends consult these instead of
  // waiting forever on traffic that can no longer arrive (or drain).  The
  // flags are written before the per-mailbox notify (under each box mutex),
  // so waiters cannot miss the transition.
  std::atomic<bool> running_{false};
  std::unique_ptr<std::atomic<bool>[]> rank_done_;

  // barrier state (central, generation-counted)
  TrackedMutex barrier_mutex_{"msg.barrier"};
  std::condition_variable_any barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // reduction state (contribute-then-read with two internal barriers)
  std::vector<double> reduce_slots_;

  WorldStats stats_;
  mutable TrackedMutex stats_mutex_{"msg.stats"};

  // Transport binding (null for the in-process world).  `stats_base_` is
  // the transport's counters at the last reset_stats(), so stats() reports
  // deltas scoped to the current measurement window.
  Transport* transport_ = nullptr;
  int local_rank_ = 0;
  TransportStats stats_base_;
};

}  // namespace sacpp::msg
