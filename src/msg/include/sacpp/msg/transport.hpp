#pragma once
// The transport seam between msg::World and a real interconnect.
//
// The in-process World delivers messages through shared-memory mailboxes —
// every rank is a thread of one OS process.  A Transport replaces that
// substrate with something that leaves the process: construct a World bound
// to a Transport and the *same* Comm API (send/recv/sendrecv/irecv plus all
// collectives) runs one rank per OS process over whatever wire the transport
// provides.  sacpp_net's TcpTransport (src/net) is the first implementation:
// length-prefixed tagged frames over non-blocking TCP sockets (docs/net.md).
//
// Contract mirrored from the mailbox substrate so mg_mpi runs unmodified:
//   * send is buffered-asynchronous: it may return once the payload is
//     copied; actual wire transmission proceeds concurrently.  A transport
//     may block for backpressure (count it in stats().blocked_sends).
//   * recv matches by (source, tag); order between equal (source, tag)
//     pairs is preserved; the payload length must equal the receive buffer.
//   * try_recv is the non-blocking probe behind Comm::Request::test.
//   * A peer that can no longer deliver (process died, connection reset)
//     must surface a diagnostic (throw) from recv/send, never hang.
//
// Self-traffic never reaches the transport: World routes rank-to-self
// messages through a local mailbox, so implementations may assume
// dest != rank() and source != rank().

#include <cstdint>
#include <span>

namespace sacpp::msg {

// Wire-level accounting a transport exposes; World::stats() merges these
// into WorldStats so callers see one unified view (docs/net.md#counters).
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;      // on-the-wire bytes, headers included
  std::uint64_t bytes_received = 0;
  std::uint64_t reconnects = 0;      // connect retries + re-establishments
  std::uint64_t blocked_sends = 0;   // sends that waited on backpressure
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const noexcept = 0;
  virtual int size() const noexcept = 0;

  // Buffered-asynchronous tagged send to a remote rank (dest != rank()).
  virtual void send(int dest, int tag, std::span<const double> data) = 0;

  // Blocking matched receive from a remote rank (source != rank()).  The
  // message must have exactly out.size() doubles.
  virtual void recv(int source, int tag, std::span<double> out) = 0;

  // Non-blocking probe: deliver-and-true if a matching message is queued.
  virtual bool try_recv(int source, int tag, std::span<double> out) = 0;

  virtual TransportStats stats() const = 0;
};

}  // namespace sacpp::msg
