#include "sacpp/msg/msg.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>

#include "sacpp/obs/export.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/trace.hpp"

namespace sacpp::msg {

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

namespace {
// Collective traffic uses reserved negative tags (broadcast/gather/scatter);
// it is exempt from the bounded-mailbox cap because it is self-limiting (at
// most one collective message per rank pair in flight).
bool collective_tag(int tag) noexcept { return tag <= -1000; }

void accumulate(WorldStats& into, const WorldStats& s) {
  into.messages += s.messages;
  into.bytes += s.bytes;
  into.barriers += s.barriers;
  into.reductions += s.reductions;
  into.send_blocked += s.send_blocked;
  into.bytes_sent += s.bytes_sent;
  into.bytes_received += s.bytes_received;
  into.reconnects += s.reconnects;
}

// Process-global registry behind the sacpp_msg_* Prometheus counters: totals
// across every world this process ever ran (live worlds polled, destroyed
// worlds folded into `retired` so the counters stay monotonic).  Leaked
// intentionally — worlds may outlive static destruction order.
struct WorldRegistry {
  TrackedMutex mutex{"msg.registry"};
  std::vector<const World*> live;
  WorldStats retired;
};

WorldRegistry& registry() {
  static auto* r = new WorldRegistry();
  return *r;
}

void register_world(const World* world) {
  auto& reg = registry();
  {
    std::lock_guard<TrackedMutex> lock(reg.mutex);
    reg.live.push_back(world);
  }
  static std::once_flag collector_once;
  std::call_once(collector_once, [] {
    obs::register_collector([](obs::MetricSink& sink) {
      WorldStats total;
      {
        auto& r = registry();
        std::lock_guard<TrackedMutex> lock(r.mutex);
        total = r.retired;
        for (const World* w : r.live) accumulate(total, w->stats());
      }
      sink.counter("sacpp_msg_messages_total",
                   static_cast<double>(total.messages),
                   "msg: point-to-point sends across all worlds");
      sink.counter("sacpp_msg_payload_bytes_total",
                   static_cast<double>(total.bytes),
                   "msg: point-to-point payload bytes");
      sink.counter("sacpp_msg_barriers_total",
                   static_cast<double>(total.barriers),
                   "msg: barrier operations");
      sink.counter("sacpp_msg_reductions_total",
                   static_cast<double>(total.reductions),
                   "msg: allreduce operations");
      sink.counter("sacpp_msg_send_blocked_total",
                   static_cast<double>(total.send_blocked),
                   "msg: sends that waited on backpressure");
      sink.counter("sacpp_msg_bytes_sent_total",
                   static_cast<double>(total.bytes_sent),
                   "msg: bytes sent (wire-level for transport worlds)");
      sink.counter("sacpp_msg_bytes_received_total",
                   static_cast<double>(total.bytes_received),
                   "msg: bytes received (wire-level for transport worlds)");
      sink.counter("sacpp_msg_reconnects_total",
                   static_cast<double>(total.reconnects),
                   "msg: transport connect retries and re-establishments");
    });
  });
}

void unregister_world(const World* world) {
  auto& reg = registry();
  std::lock_guard<TrackedMutex> lock(reg.mutex);
  accumulate(reg.retired, world->stats());
  reg.live.erase(std::remove(reg.live.begin(), reg.live.end(), world),
                 reg.live.end());
}
}  // namespace

World::World(int ranks, std::size_t max_mailbox_messages)
    : ranks_(ranks), mailbox_cap_(max_mailbox_messages) {
  SACPP_REQUIRE(ranks >= 1, "message-passing world needs >= 1 rank");
  mailboxes_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  reduce_slots_.assign(static_cast<std::size_t>(ranks), 0.0);
  rank_done_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    rank_done_[static_cast<std::size_t>(r)].store(true,
                                                  std::memory_order_relaxed);
  }
  register_world(this);
}

World::World(Transport& transport)
    : ranks_(transport.size()),
      mailbox_cap_(0),
      transport_(&transport),
      local_rank_(transport.rank()) {
  SACPP_REQUIRE(ranks_ >= 1, "message-passing world needs >= 1 rank");
  SACPP_REQUIRE(local_rank_ >= 0 && local_rank_ < ranks_,
                "transport rank out of range for its world size");
  // Mailboxes exist for every rank so indexing stays uniform, but only the
  // local rank's box ever holds traffic (self-sends; 1-rank worlds exchange
  // halos with themselves).  Remote ranks stay rank_done_ = true: receive()
  // routes remote sources to the transport before consulting that flag.
  mailboxes_.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  reduce_slots_.assign(static_cast<std::size_t>(ranks_), 0.0);
  rank_done_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    rank_done_[static_cast<std::size_t>(r)].store(true,
                                                  std::memory_order_relaxed);
  }
  stats_base_ = transport.stats();
  register_world(this);
}

World::~World() { unregister_world(this); }

void World::wake_all_mailboxes() {
  // Take each box mutex before notifying: a waiter that checked the state
  // flags and decided to sleep holds the mutex until it actually waits, so
  // locking here guarantees the notification lands after it is parked.
  for (auto& box : mailboxes_) {
    std::lock_guard<TrackedMutex> lock(box->mutex);
    box->arrived.notify_all();
    box->drained.notify_all();
  }
}

void World::run(const std::function<void(Comm&)>& fn) {
  // An in-process world hosts every rank as a thread; a transport-bound
  // world hosts exactly one — the rank this OS process plays — and its
  // peers run the same program in their own processes.
  std::vector<int> local;
  if (transport_ == nullptr) {
    local.reserve(static_cast<std::size_t>(ranks_));
    for (int r = 0; r < ranks_; ++r) local.push_back(r);
  } else {
    local.push_back(local_rank_);
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(local.size());
  threads.reserve(local.size());
  for (int r : local) {
    rank_done_[static_cast<std::size_t>(r)].store(false,
                                                  std::memory_order_relaxed);
  }
  running_.store(true, std::memory_order_release);
  // Rank threads inherit the spawning thread's request trace context, so a
  // traced serve job running the MPI-style variant stitches its rank spans
  // (sends, barriers, solve phases) into the request's tree.
  const obs::TraceContext trace_ctx = obs::current_trace();
  for (std::size_t i = 0; i < local.size(); ++i) {
    const int r = local[i];
    threads.emplace_back([this, r, i, &fn, &errors, trace_ctx] {
      obs::set_thread_name("rank-" + std::to_string(r));
      const obs::TraceBinding trace_binding(trace_ctx);
      Comm comm(this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      // This rank's program is over: peers blocked on a recv from it (or on
      // backpressure toward it) must fail with a diagnostic, not hang.
      rank_done_[static_cast<std::size_t>(r)].store(
          true, std::memory_order_release);
      wake_all_mailboxes();
    });
  }
  for (auto& t : threads) t.join();
  running_.store(false, std::memory_order_release);
  wake_all_mailboxes();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void World::deliver(int source, int dest, int tag,
                    std::span<const double> data) {
  SACPP_REQUIRE(dest >= 0 && dest < ranks_, "send destination out of range");
  const std::size_t payload_bytes = data.size() * sizeof(double);
  obs::ScopedSpan span(obs::SpanKind::kMsgSend, "msg_send",
                       static_cast<std::int64_t>(payload_bytes));
  if (obs::enabled()) [[unlikely]] {
    obs::observe(obs::Hist::kMsgBytes, payload_bytes);
  }
  if (transport_ != nullptr && dest != local_rank_) {
    // Remote rank: hand off to the wire.  The transport owns directional
    // byte accounting (headers included); stats() merges it back in.
    transport_->send(dest, tag, data);
    std::lock_guard<TrackedMutex> lock(stats_mutex_);
    stats_.messages += 1;
    stats_.bytes += payload_bytes;
    return;
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  bool blocked = false;
  {
    std::unique_lock<TrackedMutex> lock(box.mutex);
    if (mailbox_cap_ > 0 && !collective_tag(tag)) {
      // Bounded mailbox: block until the consumer drains below the cap —
      // credit-style backpressure instead of unbounded queue growth.  A
      // consumer that already finished (or a torn-down world) can never
      // drain, so that is an error, not a hang.
      while (box.messages.size() >= mailbox_cap_) {
        SACPP_REQUIRE(
            running_.load(std::memory_order_acquire),
            "msg: send to a full mailbox after world shutdown (rank " +
                std::to_string(dest) + ", mailbox at capacity " +
                std::to_string(mailbox_cap_) + ")");
        SACPP_REQUIRE(
            !rank_done_[static_cast<std::size_t>(dest)].load(
                std::memory_order_acquire),
            "msg: send blocked on backpressure toward rank " +
                std::to_string(dest) +
                ", whose program already finished (mailbox at capacity " +
                std::to_string(mailbox_cap_) + " and can never drain)");
        blocked = true;
        box.drained.wait(lock);
      }
    }
    box.messages.push_back(
        Message{source, tag, std::vector<double>(data.begin(), data.end())});
  }
  box.arrived.notify_all();
  {
    std::lock_guard<TrackedMutex> lock(stats_mutex_);
    stats_.messages += 1;
    stats_.bytes += payload_bytes;
    if (blocked) stats_.send_blocked += 1;
    if (transport_ == nullptr) {
      // In-process hop: both directions are the same local copy.  (A
      // transport world's self-traffic never touches the wire, so its
      // directional counters stay wire-only.)
      stats_.bytes_sent += payload_bytes;
      stats_.bytes_received += payload_bytes;
    }
  }
}

void World::receive(int self, int source, int tag, std::span<double> out) {
  SACPP_REQUIRE(source >= 0 && source < ranks_, "recv source out of range");
  if (transport_ != nullptr && source != local_rank_) {
    transport_->recv(source, tag, out);
    return;
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<TrackedMutex> lock(box.mutex);
  for (;;) {
    const auto it = std::find_if(
        box.messages.begin(), box.messages.end(), [&](const Message& m) {
          return m.source == source && m.tag == tag;
        });
    if (it != box.messages.end()) {
      SACPP_REQUIRE(it->payload.size() == out.size(),
                    "message length does not match receive buffer");
      std::copy(it->payload.begin(), it->payload.end(), out.begin());
      box.messages.erase(it);
      lock.unlock();
      box.drained.notify_all();
      return;
    }
    // No matching message.  Waiting is only correct while one can still
    // arrive: a world whose program has ended, or a source rank that already
    // returned, will never send again — diagnose instead of hanging.
    SACPP_REQUIRE(running_.load(std::memory_order_acquire),
                  "msg: recv(source=" + std::to_string(source) + ", tag=" +
                      std::to_string(tag) + ") on rank " +
                      std::to_string(self) +
                      " after world shutdown — no program is running, the "
                      "message can never arrive");
    SACPP_REQUIRE(!rank_done_[static_cast<std::size_t>(source)].load(
                      std::memory_order_acquire),
                  "msg: recv(source=" + std::to_string(source) + ", tag=" +
                      std::to_string(tag) + ") on rank " +
                      std::to_string(self) + " but rank " +
                      std::to_string(source) +
                      "'s program already finished without sending it");
    box.arrived.wait(lock);
  }
}

bool World::try_receive(int self, int source, int tag,
                        std::span<double> out) {
  SACPP_REQUIRE(source >= 0 && source < ranks_, "recv source out of range");
  if (transport_ != nullptr && source != local_rank_) {
    return transport_->try_recv(source, tag, out);
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  {
    std::lock_guard<TrackedMutex> lock(box.mutex);
    const auto it = std::find_if(
        box.messages.begin(), box.messages.end(), [&](const Message& m) {
          return m.source == source && m.tag == tag;
        });
    if (it == box.messages.end()) return false;
    SACPP_REQUIRE(it->payload.size() == out.size(),
                  "message length does not match receive buffer");
    std::copy(it->payload.begin(), it->payload.end(), out.begin());
    box.messages.erase(it);
  }
  box.drained.notify_all();
  return true;
}

std::size_t World::mailbox_depth(int self) const {
  SACPP_REQUIRE(self >= 0 && self < ranks_, "mailbox rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::lock_guard<TrackedMutex> lock(box.mutex);
  return box.messages.size();
}

void World::barrier_wait() {
  if (transport_ != nullptr) {
    barrier_transport();
    return;
  }
  obs::ScopedSpan span(obs::SpanKind::kCollective, "barrier");
  std::unique_lock<TrackedMutex> lock(barrier_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_waiting_ == ranks_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    {
      std::lock_guard<TrackedMutex> slock(stats_mutex_);
      stats_.barriers += 1;
    }
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_generation_ != generation; });
}

double World::reduce(int rank, double value, bool maximum) {
  if (transport_ != nullptr) return reduce_transport(value, maximum);
  obs::ScopedSpan span(obs::SpanKind::kCollective, "reduce");
  reduce_slots_[static_cast<std::size_t>(rank)] = value;
  barrier_wait();  // all contributions visible
  double acc = maximum ? reduce_slots_[0] : 0.0;
  for (int r = 0; r < ranks_; ++r) {
    const double v = reduce_slots_[static_cast<std::size_t>(r)];
    acc = maximum ? std::max(acc, v) : acc + v;
  }
  barrier_wait();  // slots free for the next reduction
  if (rank == 0) {
    std::lock_guard<TrackedMutex> slock(stats_mutex_);
    stats_.reductions += 1;
  }
  return acc;
}

// Flat gather-to-root barrier over reserved tags: every leaf posts a token
// to rank 0, which releases them once all have arrived.  Two sequential
// hops on loopback — fine at the rank counts MG uses (2-8); a tree can
// replace it without touching callers.
void World::barrier_transport() {
  obs::ScopedSpan span(obs::SpanKind::kCollective, "barrier");
  double token = 0.0;
  if (local_rank_ == 0) {
    for (int r = 1; r < ranks_; ++r) {
      transport_->recv(r, kBarrierGatherTag, std::span<double>(&token, 1));
    }
    for (int r = 1; r < ranks_; ++r) {
      transport_->send(r, kBarrierReleaseTag,
                       std::span<const double>(&token, 1));
    }
  } else {
    transport_->send(0, kBarrierGatherTag, std::span<const double>(&token, 1));
    transport_->recv(0, kBarrierReleaseTag, std::span<double>(&token, 1));
  }
  std::lock_guard<TrackedMutex> slock(stats_mutex_);
  stats_.barriers += 1;
}

double World::reduce_transport(double value, bool maximum) {
  obs::ScopedSpan span(obs::SpanKind::kCollective, "reduce");
  double acc = 0.0;
  if (local_rank_ == 0) {
    // Fill the slots exactly as the shared-memory reduction does, then
    // accumulate in rank order with the same formula — floating-point
    // addition is order-sensitive, and bit-identical norms across the two
    // substrates are a test invariant (tests/net_world_test.cpp).
    reduce_slots_[0] = value;
    for (int r = 1; r < ranks_; ++r) {
      transport_->recv(
          r, kReduceContribTag,
          std::span<double>(&reduce_slots_[static_cast<std::size_t>(r)], 1));
    }
    acc = maximum ? reduce_slots_[0] : 0.0;
    for (int r = 0; r < ranks_; ++r) {
      const double v = reduce_slots_[static_cast<std::size_t>(r)];
      acc = maximum ? std::max(acc, v) : acc + v;
    }
    for (int r = 1; r < ranks_; ++r) {
      transport_->send(r, kReduceResultTag, std::span<const double>(&acc, 1));
    }
    std::lock_guard<TrackedMutex> slock(stats_mutex_);
    stats_.reductions += 1;
  } else {
    transport_->send(0, kReduceContribTag, std::span<const double>(&value, 1));
    transport_->recv(0, kReduceResultTag, std::span<double>(&acc, 1));
  }
  return acc;
}

WorldStats World::stats() const {
  std::lock_guard<TrackedMutex> lock(stats_mutex_);
  WorldStats s = stats_;
  if (transport_ != nullptr) {
    const TransportStats ts = transport_->stats();
    s.bytes_sent += ts.bytes_sent - stats_base_.bytes_sent;
    s.bytes_received += ts.bytes_received - stats_base_.bytes_received;
    s.reconnects += ts.reconnects - stats_base_.reconnects;
    s.send_blocked += ts.blocked_sends - stats_base_.blocked_sends;
  }
  return s;
}

void World::reset_stats() {
  std::lock_guard<TrackedMutex> lock(stats_mutex_);
  stats_ = WorldStats{};
  if (transport_ != nullptr) stats_base_ = transport_->stats();
}

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

int Comm::size() const noexcept { return world_->size(); }

void Comm::send(int dest, int tag, std::span<const double> data) {
  world_->deliver(rank_, dest, tag, data);
}

void Comm::recv(int source, int tag, std::span<double> out) {
  world_->receive(rank_, source, tag, out);
}

void Comm::sendrecv(int dest, std::span<const double> out_data, int source,
                    std::span<double> in_data, int tag) {
  // Sends are buffered and never block, so send-then-recv cannot deadlock.
  send(dest, tag, out_data);
  recv(source, tag, in_data);
}

Comm::Request Comm::irecv(int source, int tag, std::span<double> out) {
  return Request(world_, rank_, source, tag, out);
}

void Comm::Request::wait() {
  if (done_) return;
  world_->receive(self_, source_, tag_, out_);
  done_ = true;
}

bool Comm::Request::test() {
  if (done_) return true;
  done_ = world_->try_receive(self_, source_, tag_, out_);
  return done_;
}

void Comm::reset_world_stats() { world_->reset_stats(); }

void Comm::barrier() { world_->barrier_wait(); }

double Comm::allreduce_sum(double value) {
  return world_->reduce(rank_, value, /*maximum=*/false);
}

double Comm::allreduce_max(double value) {
  return world_->reduce(rank_, value, /*maximum=*/true);
}

void Comm::broadcast(int root, std::span<double> data) {
  constexpr int kTag = -1000;  // reserved collective tag
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kTag, data);
    }
  } else {
    recv(root, kTag, data);
  }
}

void Comm::gather(int root, std::span<const double> block,
                  std::span<double> all) {
  constexpr int kTag = -1001;
  if (rank_ == root) {
    SACPP_REQUIRE(all.size() == block.size() * static_cast<std::size_t>(size()),
                  "gather root buffer size mismatch");
    std::copy(block.begin(), block.end(),
              all.begin() + static_cast<std::ptrdiff_t>(block.size()) * root);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv(r, kTag,
           all.subspan(block.size() * static_cast<std::size_t>(r),
                       block.size()));
    }
  } else {
    send(root, kTag, block);
  }
}

void Comm::scatter(int root, std::span<const double> all,
                   std::span<double> block) {
  constexpr int kTag = -1002;
  if (rank_ == root) {
    SACPP_REQUIRE(all.size() == block.size() * static_cast<std::size_t>(size()),
                  "scatter root buffer size mismatch");
    for (int r = 0; r < size(); ++r) {
      const auto piece = all.subspan(
          block.size() * static_cast<std::size_t>(r), block.size());
      if (r == root) {
        std::copy(piece.begin(), piece.end(), block.begin());
      } else {
        send(r, kTag, piece);
      }
    }
  } else {
    recv(root, kTag, block);
  }
}

}  // namespace sacpp::msg
