#include "sacpp/serve/selfcheck.hpp"

#include <chrono>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sacpp/check/lockorder.hpp"
#include "sacpp/check/schedule.hpp"
#include "sacpp/common/error.hpp"
#include "sacpp/msg/msg.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/serve/queue.hpp"
#include "sacpp/serve/server.hpp"
#include "sacpp/serve/wire.hpp"

namespace sacpp::serve {

namespace {

constexpr int kCheckTag = 77;  // wire tag used by the self-check world

// Reserved-tag magnitude of msg::World's broadcast (msg.cpp tag -1000),
// used as the collective's session-event kind.
constexpr std::uint32_t kBroadcastKind = 1000;

}  // namespace

// ---------------------------------------------------------------------------
// Pass selection
// ---------------------------------------------------------------------------

bool parse_check_pass(const std::string& value, CheckPass* out) {
  if (value == "protocol") {
    *out = CheckPass::kProtocol;
  } else if (value == "locks") {
    *out = CheckPass::kLocks;
  } else if (value == "schedule") {
    *out = CheckPass::kSchedule;
  } else if (value == "all") {
    *out = CheckPass::kAll;
  } else {
    return false;
  }
  return true;
}

const char* check_pass_name(CheckPass pass) noexcept {
  switch (pass) {
    case CheckPass::kProtocol:
      return "protocol";
    case CheckPass::kLocks:
      return "locks";
    case CheckPass::kSchedule:
      return "schedule";
    case CheckPass::kAll:
      return "all";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Session specs of the serve wire protocol
// ---------------------------------------------------------------------------

namespace {

// Both endpoint specs share the response choice: one transition per
// SolveStatus, distinguished by the result frame's status byte.
void add_response_branches(check::SessionSpec* spec, check::Dir dir) {
  const struct {
    SolveStatus status;
    const char* label;
  } kBranches[] = {
      {SolveStatus::kOk, "SRS1:ok"},
      {SolveStatus::kWrongAnswer, "SRS1:wrong-answer"},
      {SolveStatus::kShedDeadline, "SRS1:shed-deadline"},
      {SolveStatus::kShedCapacity, "SRS1:shed-capacity"},
      {SolveStatus::kDeadlineMiss, "SRS1:deadline-miss"},
      {SolveStatus::kError, "SRS1:error"},
  };
  for (const auto& b : kBranches) {
    spec->transitions.push_back({1, dir, kResultMagic,
                                 static_cast<std::uint32_t>(b.status), 0,
                                 b.label});
  }
}

}  // namespace

check::SessionSpec client_session_spec() {
  check::SessionSpec spec;
  spec.name = "serve.wire";
  spec.start = 0;
  spec.accepting = {0};
  spec.transitions.push_back(
      {0, check::Dir::kSend, kRequestMagic, check::kAnyBranch, 1, "SRQ1"});
  add_response_branches(&spec, check::Dir::kRecv);
  return spec;
}

check::SessionSpec server_session_spec() {
  check::SessionSpec spec;
  spec.name = "serve.wire";
  spec.start = 0;
  spec.accepting = {0};
  spec.transitions.push_back(
      {0, check::Dir::kRecv, kRequestMagic, check::kAnyBranch, 1, "SRQ1"});
  add_response_branches(&spec, check::Dir::kSend);
  return spec;
}

// ---------------------------------------------------------------------------
// protocol pass
// ---------------------------------------------------------------------------

namespace {

// TypedChannel transport over a Comm peer: kinds are enforced by the
// protocol type, the frames themselves flow through the monitored
// send_frame / recv_frame path.
struct CommTransport {
  msg::Comm* comm;
  int peer;

  void send(std::uint32_t, std::span<const std::uint8_t> frame) {
    send_frame(*comm, peer, kCheckTag, frame);
  }
  std::vector<std::uint8_t> recv(std::uint32_t) {
    return recv_frame(*comm, peer, kCheckTag);
  }
};

// One response per SolveStatus so the exchange exercises every choice
// branch — finish() then proves the spec has no dead transitions either.
constexpr SolveStatus kProtocolRounds[] = {
    SolveStatus::kOk,           SolveStatus::kWrongAnswer,
    SolveStatus::kShedDeadline, SolveStatus::kShedCapacity,
    SolveStatus::kDeadlineMiss, SolveStatus::kError,
};
constexpr std::size_t kProtocolRoundCount =
    sizeof(kProtocolRounds) / sizeof(kProtocolRounds[0]);

void protocol_client(msg::Comm& comm) {
  for (std::size_t i = 0; i < kProtocolRoundCount; ++i) {
    SolveRequest req;
    req.id = i + 1;
    req.nit = 1;
    const std::vector<std::uint8_t> frame = encode_request(req);
    std::vector<std::uint8_t> reply;
    if (i == 0) {
      // First round through the static layer: the protocol type permits
      // exactly send-then-recv; anything else would not compile.
      using Proto = check::proto::Seq<check::proto::Send<kRequestMagic>,
                                      check::proto::Recv<kResultMagic>>;
      CommTransport transport{&comm, 1};
      auto c0 = check::make_typed_channel<Proto>(transport);
      auto c1 = std::move(c0).send(frame);
      auto c2 = std::move(c1).recv(&reply);
      static_assert(decltype(c2)::kDone);
    } else {
      send_frame(comm, 1, kCheckTag, frame);
      reply = recv_frame(comm, 1, kCheckTag);
    }
    SolveResult res;
    std::string error;
    SACPP_REQUIRE(decode_result(reply, &res, &error),
                  "protocol check: result frame failed to decode");
    SACPP_REQUIRE(res.id == req.id,
                  "protocol check: response id does not match the request");
    SACPP_REQUIRE(res.status == kProtocolRounds[i],
                  "protocol check: response carries the wrong status branch");
  }
}

void protocol_server(msg::Comm& comm) {
  for (std::size_t i = 0; i < kProtocolRoundCount; ++i) {
    const std::vector<std::uint8_t> frame = recv_frame(comm, 0, kCheckTag);
    SolveRequest req;
    std::string error;
    SACPP_REQUIRE(decode_request(frame, &req, &error),
                  "protocol check: request frame failed to decode");
    SolveResult res;
    res.id = req.id;
    res.status = kProtocolRounds[i];
    if (res.status == SolveStatus::kError) res.error = "selfcheck error leg";
    send_frame(comm, 0, kCheckTag, encode_result(res));
  }
}

}  // namespace

bool run_protocol_check(check::DiagnosticEngine* engine) {
  const std::size_t before = engine->size();

  const check::SessionSpec client_spec = client_session_spec();
  const check::SessionSpec server_spec = server_session_spec();
  check::SessionMonitor client_mon(&client_spec, "client");
  check::SessionMonitor server_mon(&server_spec, "server");

  // The collective leg: a root broadcast observed per endpoint against the
  // collective session spec (the leaf runs the dual).
  const check::SessionSpec bcast_root =
      check::collective_session_spec("broadcast", kBroadcastKind,
                                     check::Dir::kSend);
  const check::SessionSpec bcast_leaf =
      check::collective_session_spec("broadcast", kBroadcastKind,
                                     check::Dir::kRecv);
  check::SessionMonitor root_mon(&bcast_root, "rank0");
  check::SessionMonitor leaf_mon(&bcast_leaf, "rank1");

  try {
    msg::World world(2);
    world.run([&](msg::Comm& comm) {
      // Checked mode on for this rank thread only: the wire hooks gate on
      // the active config, not the process-global one.
      sac::SacConfig snapshot = sac::active_config();
      snapshot.check = true;
      sac::ConfigBinding binding(&snapshot);

      if (comm.rank() == 0) {
        {
          check::MonitorBinding bind(&client_mon);
          protocol_client(comm);
        }
        check::MonitorBinding bind(&root_mon);
        double value = 42.0;
        check::note_channel_event(check::Dir::kSend, kBroadcastKind);
        comm.broadcast(0, std::span<double>(&value, 1));
      } else {
        {
          check::MonitorBinding bind(&server_mon);
          protocol_server(comm);
        }
        check::MonitorBinding bind(&leaf_mon);
        double value = 0.0;
        check::note_channel_event(check::Dir::kRecv, kBroadcastKind);
        comm.broadcast(0, std::span<double>(&value, 1));
        SACPP_REQUIRE(value == 42.0,
                      "protocol check: broadcast payload corrupted");
      }
    });
  } catch (const std::exception& e) {
    engine->report(check::Severity::kError, check::Pass::kSession,
                   "serve.wire/world", e.what());
  }

  client_mon.finish();
  server_mon.finish();
  root_mon.finish();
  leaf_mon.finish();
  engine->report_all(client_mon.engine().diagnostics());
  engine->report_all(server_mon.engine().diagnostics());
  engine->report_all(root_mon.engine().diagnostics());
  engine->report_all(leaf_mon.engine().diagnostics());

  // Full coverage is part of the contract: dead-branch warnings fail too.
  return engine->size() == before;
}

// ---------------------------------------------------------------------------
// locks pass
// ---------------------------------------------------------------------------

bool run_lock_check(const SelfCheckOptions& opts,
                    check::DiagnosticEngine* engine) {
  const std::size_t errors_before = engine->count(check::Severity::kError);

  check::LockOrderSession session;
  {
    // Class-S serve traffic: admission, dispatch, gang pools, the depot
    // shards under the solves, and the stop path.
    ServeConfig cfg;
    cfg.total_cores = 2;
    cfg.executors = 2;
    cfg.queue_capacity = 8;
    SolverService service(cfg);
    std::vector<std::future<SolveResult>> futures;
    for (std::uint64_t i = 0; i < 4; ++i) {
      SolveRequest req;
      req.id = i + 1;
      req.nit = 1;
      req.gang = (i % 2 == 0) ? 1 : 2;
      req.priority = static_cast<Priority>(i % kPriorityLanes);
      futures.push_back(service.submit(req));
    }
    service.drain();
    for (auto& f : futures) (void)f.get();
    service.stop();
  }
  {
    // msg traffic: mailbox / barrier / stats nesting via a frame exchange
    // plus the collectives MG uses.
    msg::World world(2);
    world.run([](msg::Comm& comm) {
      if (comm.rank() == 0) {
        SolveRequest req;
        req.id = 9;
        send_frame(comm, 1, kCheckTag, encode_request(req));
      } else {
        (void)recv_frame(comm, 0, kCheckTag);
      }
      comm.barrier();
      (void)comm.allreduce_sum(1.0);
    });
  }
  session.finish();
  engine->report_all(session.engine().diagnostics());
  if (!opts.lock_graph_path.empty()) {
    check::write_lock_graph(opts.lock_graph_path);
  }

  return engine->count(check::Severity::kError) == errors_before;
}

// ---------------------------------------------------------------------------
// schedule pass: AdmissionQueue against an exact model mirror
// ---------------------------------------------------------------------------

namespace {

// All schedule time is virtual (pop_best takes now_ns explicitly), so a
// schedule is a pure function of its seed: "now" is fixed and expiring
// deadlines simply sit in the past.
constexpr std::int64_t kVirtualNow = 1000;
constexpr std::int64_t kExpiredDeadline = 500;

struct ModelEntry {
  std::uint64_t id = 0;
  Priority prio = Priority::kNormal;
  unsigned gang = 1;
  std::int64_t deadline_ns = 0;
  std::future<SolveResult> fut;
  bool consumed = false;  // result already inspected
};

struct QueueModel {
  explicit QueueModel(std::size_t cap)
      : queue(std::make_unique<AdmissionQueue>(cap)), capacity(cap) {}

  std::unique_ptr<AdmissionQueue> queue;
  std::size_t capacity;
  std::vector<std::unique_ptr<ModelEntry>> entries;
  std::deque<ModelEntry*> lanes[kPriorityLanes];  // mirror of queued jobs
  unsigned bypass = 0;
  bool closed = false;
  std::uint64_t next_id = 1;

  std::size_t depth() const {
    std::size_t n = 0;
    for (const auto& lane : lanes) n += lane.size();
    return n;
  }
};

bool future_ready(const std::future<SolveResult>& fut) {
  return fut.valid() &&
         fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

// The settle-exactly-once invariant, entry-side: the promise must be
// fulfilled (ready, not broken) with the status the model predicts.
void expect_settled(ModelEntry* e, SolveStatus status) {
  SACPP_REQUIRE(future_ready(e->fut),
                "schedule: job promise not settled when the model says it "
                "must be");
  SACPP_REQUIRE(!e->consumed,
                "schedule: model asked to settle the same job twice");
  const SolveResult res = e->fut.get();
  e->consumed = true;
  SACPP_REQUIRE(res.status == status,
                "schedule: job settled with a status other than the model's "
                "prediction");
}

void model_push(QueueModel& m, Priority prio, unsigned gang,
                std::int64_t deadline_ns) {
  auto e = std::make_unique<ModelEntry>();
  e->id = m.next_id++;
  e->prio = prio;
  e->gang = gang;
  e->deadline_ns = deadline_ns;

  QueuedJob job;
  job.request.id = e->id;
  job.request.priority = prio;
  job.gang = gang;
  job.deadline_ns = deadline_ns;
  e->fut = job.promise.get_future();
  const AdmissionQueue::Admit verdict = m.queue->push(std::move(job));

  const auto lane = static_cast<std::size_t>(prio);
  if (m.closed) {
    SACPP_REQUIRE(verdict == AdmissionQueue::Admit::kClosed,
                  "schedule: push after close must report kClosed");
    expect_settled(e.get(), SolveStatus::kShedCapacity);
  } else if (m.depth() < m.capacity) {
    SACPP_REQUIRE(verdict == AdmissionQueue::Admit::kAccepted,
                  "schedule: push below capacity must be accepted");
    m.lanes[lane].push_back(e.get());
  } else {
    std::size_t victim_lane = kPriorityLanes;
    for (std::size_t l = kPriorityLanes; l-- > lane + 1;) {
      if (!m.lanes[l].empty()) {
        victim_lane = l;
        break;
      }
    }
    if (victim_lane == kPriorityLanes) {
      SACPP_REQUIRE(verdict == AdmissionQueue::Admit::kRejected,
                    "schedule: full queue with no lower-priority victim must "
                    "reject");
      expect_settled(e.get(), SolveStatus::kShedCapacity);
    } else {
      SACPP_REQUIRE(verdict == AdmissionQueue::Admit::kAcceptedEvicted,
                    "schedule: full queue with a lower-priority victim must "
                    "evict");
      ModelEntry* victim = m.lanes[victim_lane].back();
      // Eviction preserves priority ordering: only a strictly lower-priority
      // job may be displaced, and its promise settles immediately.
      SACPP_REQUIRE(victim_lane > lane,
                    "schedule: eviction displaced an equal-or-higher "
                    "priority job");
      expect_settled(victim, SolveStatus::kShedCapacity);
      m.lanes[victim_lane].pop_back();
      m.lanes[lane].push_back(e.get());
    }
  }
  m.entries.push_back(std::move(e));
}

void model_pop(QueueModel& m, unsigned free_cores) {
  QueuedJob out;
  const bool got = m.queue->pop_best(free_cores, kVirtualNow, &out);

  // Mirror the deadline sweep: expired jobs settle kShedDeadline first.
  for (auto& lane : m.lanes) {
    for (auto it = lane.begin(); it != lane.end();) {
      if ((*it)->deadline_ns != 0 && kVirtualNow > (*it)->deadline_ns) {
        expect_settled(*it, SolveStatus::kShedDeadline);
        it = lane.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Expected dispatch: first fit in priority-then-FIFO order, bounded
  // head-of-line bypass.
  ModelEntry* fit = nullptr;
  bool fit_is_head = true;
  for (auto& lane : m.lanes) {
    for (ModelEntry* e : lane) {
      if (e->gang <= free_cores) {
        fit = e;
        goto found;
      }
      fit_is_head = false;
    }
  }
found:
  if (fit == nullptr) {
    SACPP_REQUIRE(!got, "schedule: pop dispatched a job no lane can fit");
    return;
  }
  if (!fit_is_head && m.bypass >= AdmissionQueue::kMaxHeadBypass) {
    SACPP_REQUIRE(!got,
                  "schedule: head-of-line bypass exceeded kMaxHeadBypass");
    return;
  }
  SACPP_REQUIRE(got, "schedule: a dispatchable job was not handed out");
  SACPP_REQUIRE(out.request.id == fit->id,
                "schedule: dispatched job is not the priority-FIFO first "
                "fit");
  m.bypass = fit_is_head ? 0 : m.bypass + 1;
  for (auto& lane : m.lanes) {
    for (auto it = lane.begin(); it != lane.end(); ++it) {
      if (*it == fit) {
        lane.erase(it);
        goto removed;
      }
    }
  }
removed:
  // Settle as the executor would; the promise throws if the queue already
  // settled this job (the settle-exactly-once invariant, queue-side).
  SolveResult res;
  res.id = out.request.id;
  res.status = SolveStatus::kOk;
  res.gang = out.gang;
  out.promise.set_value(res);
  expect_settled(fit, SolveStatus::kOk);
}

void model_shed(QueueModel& m) {
  const std::size_t flushed =
      m.queue->shed_all(SolveStatus::kShedCapacity, "schedule shed");
  SACPP_REQUIRE(flushed == m.depth(),
                "schedule: shed_all flushed a different count than queued");
  for (auto& lane : m.lanes) {
    for (ModelEntry* e : lane) expect_settled(e, SolveStatus::kShedCapacity);
    lane.clear();
  }
}

void model_finish(QueueModel& m) {
  // Destroying the queue exercises the destructor shed: anything still
  // queued must settle, never break its promise.
  m.queue.reset();
  for (auto& e : m.entries) {
    if (e->consumed) continue;
    SACPP_REQUIRE(future_ready(e->fut),
                  "schedule: a job promise was left unsettled at queue "
                  "destruction");
    try {
      (void)e->fut.get();
    } catch (const std::future_error&) {
      SACPP_REQUIRE(false,
                    "schedule: broken promise at queue destruction");
    }
  }
}

check::ScheduleScenario build_queue_scenario(std::uint64_t seed) {
  auto m = std::make_shared<QueueModel>(4);
  // Independent stream from the explorer's interleaving RNG so the
  // operation mix and the schedule vary independently.
  check::ScheduleRng rng(seed ^ 0xc2b2ae3d27d4eb4full);

  check::ScheduleScenario scenario;
  for (const char* name : {"producer-a", "producer-b"}) {
    check::ScheduleTask producer;
    producer.name = name;
    for (int i = 0; i < 4; ++i) {
      const auto prio = static_cast<Priority>(rng.below(kPriorityLanes));
      const unsigned gang = 1 + static_cast<unsigned>(rng.below(3));
      const std::int64_t deadline =
          rng.below(5) == 0 ? kExpiredDeadline : 0;
      producer.steps.push_back(
          [m, prio, gang, deadline] { model_push(*m, prio, gang, deadline); });
    }
    scenario.tasks.push_back(std::move(producer));
  }

  check::ScheduleTask dispatcher;
  dispatcher.name = "dispatcher";
  for (int i = 0; i < 5; ++i) {
    const unsigned cores = 1 + static_cast<unsigned>(rng.below(4));
    dispatcher.steps.push_back([m, cores] { model_pop(*m, cores); });
  }
  scenario.tasks.push_back(std::move(dispatcher));

  check::ScheduleTask closer;
  closer.name = "closer";
  closer.steps.push_back([m] {
    m->queue->close();
    m->closed = true;
  });
  if (rng.below(2) == 0) {
    closer.steps.push_back([m] { model_shed(*m); });
  }
  scenario.tasks.push_back(std::move(closer));

  scenario.finally = [m] { model_finish(*m); };
  return scenario;
}

// ---------------------------------------------------------------------------
// schedule pass: SolverService lifecycles
// ---------------------------------------------------------------------------

struct ServiceModel {
  ServiceModel() : service(make_config()) {}

  static ServeConfig make_config() {
    ServeConfig cfg;
    cfg.total_cores = 2;
    cfg.executors = 2;
    cfg.queue_capacity = 8;
    cfg.trim_interval_ns = 0;
    return cfg;
  }

  SolverService service;
  std::vector<std::future<SolveResult>> futures;
};

check::ScheduleScenario build_service_scenario(std::uint64_t seed) {
  auto m = std::make_shared<ServiceModel>();
  check::ScheduleRng rng(seed ^ 0xa0761d6478bd642full);

  check::ScheduleScenario scenario;
  std::uint64_t id = 1;
  for (const char* name : {"client-a", "client-b"}) {
    check::ScheduleTask client;
    client.name = name;
    for (int i = 0; i < 2; ++i) {
      SolveRequest req;
      req.id = id++;
      req.nit = 1;
      req.priority = static_cast<Priority>(rng.below(kPriorityLanes));
      req.gang = 1 + static_cast<unsigned>(rng.below(2));
      // Occasional sub-dispatch deadline: sheds or misses, never dangles.
      if (rng.below(4) == 0) req.deadline_ns = 1;
      client.steps.push_back(
          [m, req] { m->futures.push_back(m->service.submit(req)); });
    }
    scenario.tasks.push_back(std::move(client));
  }

  check::ScheduleTask lifecycle;
  lifecycle.name = "lifecycle";
  lifecycle.steps.push_back([m] {
    m->service.drain();
    // Drain-on-stop completeness, first half: a returned drain means no
    // queued or running work...
    SACPP_REQUIRE(m->service.queue_depth() == 0 &&
                      m->service.active_jobs() == 0,
                  "schedule: drain returned with work still in flight");
    // ...and therefore every future submitted so far is settled.
    for (const auto& f : m->futures) {
      SACPP_REQUIRE(future_ready(f),
                    "schedule: drain returned before a submitted job "
                    "settled");
    }
  });
  lifecycle.steps.push_back([m] { m->service.stop(); });
  scenario.tasks.push_back(std::move(lifecycle));

  scenario.finally = [m] {
    m->service.stop();
    // Every submission — before or after stop — must have settled by now.
    for (auto& f : m->futures) {
      SACPP_REQUIRE(future_ready(f),
                    "schedule: a future was left unsettled after stop");
      (void)f.get();
    }
  };
  return scenario;
}

}  // namespace

bool run_schedule_check(const SelfCheckOptions& opts,
                        check::DiagnosticEngine* engine) {
  const std::size_t before = engine->size();

  check::ScheduleOptions queue_opts;
  queue_opts.schedules = opts.schedules;
  check::ScheduleExplorer queue_explorer(queue_opts);
  const check::ScheduleReport queue_report =
      opts.schedule_seed != 0
          ? queue_explorer.replay(opts.schedule_seed, build_queue_scenario,
                                  engine)
          : queue_explorer.run(build_queue_scenario, engine);

  bool service_ok = true;
  if (opts.schedule_seed == 0 && opts.service_lifecycles > 0) {
    check::ScheduleOptions service_opts;
    service_opts.schedules = opts.service_lifecycles;
    service_opts.first_seed = 1001;
    service_opts.preemptions = 2;
    check::ScheduleExplorer service_explorer(service_opts);
    service_ok =
        !service_explorer.run(build_service_scenario, engine).failed;
  }

  return !queue_report.failed && service_ok && engine->size() == before;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

bool run_self_checks(CheckPass pass, const SelfCheckOptions& opts,
                     check::DiagnosticEngine* engine) {
  bool ok = true;
  if (pass == CheckPass::kProtocol || pass == CheckPass::kAll) {
    ok = run_protocol_check(engine) && ok;
  }
  if (pass == CheckPass::kLocks || pass == CheckPass::kAll) {
    ok = run_lock_check(opts, engine) && ok;
  }
  if (pass == CheckPass::kSchedule || pass == CheckPass::kAll) {
    ok = run_schedule_check(opts, engine) && ok;
  }
  return ok;
}

}  // namespace sacpp::serve
