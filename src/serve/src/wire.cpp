#include "sacpp/serve/wire.hpp"

#include <cstdio>
#include <cstring>

#include "sacpp/check/session.hpp"
#include "sacpp/common/error.hpp"
#include "sacpp/msg/msg.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::serve {

namespace {

// Largest legal double-packed frame: the byte-count word plus the padded
// frame bytes (4-byte length prefix + kMaxFrameBytes body).  recv_frame
// validates a peer's claimed length against this before allocating, so a
// lying header cannot force a giant allocation.
constexpr std::size_t kMaxPackedDoubles =
    1 + (sizeof(std::uint32_t) + kMaxFrameBytes + sizeof(double) - 1) /
            sizeof(double);

// Session-monitor probe (docs/static_analysis.md): when checked mode is on
// and a SessionMonitor is bound to this thread, every frame boundary becomes
// a typed protocol event — the frame magic is the event kind, and a result
// frame's status byte is its choice branch (ok / shed / error in the spec).
void note_frame(check::Dir dir, std::span<const std::uint8_t> frame) {
  if (!sac::active_config().check) [[likely]] {
    return;
  }
  if (check::bound_monitor() == nullptr) return;
  std::uint32_t magic = 0;
  if (frame.size() >= 2 * sizeof(std::uint32_t)) {
    for (int i = 0; i < 4; ++i) {
      magic |= static_cast<std::uint32_t>(
                   frame[sizeof(std::uint32_t) + static_cast<std::size_t>(i)])
               << (8 * i);
    }
  }
  std::uint32_t branch = check::kAnyBranch;
  // length(4) + magic(4) + version(1) + id(8) = result status byte offset.
  constexpr std::size_t kStatusOffset = 17;
  if (magic == kResultMagic && frame.size() > kStatusOffset) {
    branch = frame[kStatusOffset];
  }
  check::note_channel_event(dir, magic, branch);
}

// ---------------------------------------------------------------------------
// Little-endian scalar packing (explicit byte shifts so the wire format is
// identical on any host endianness).
// ---------------------------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

// Bounded cursor over a frame; `ok` latches false on any out-of-bounds read
// so decoders can finish parsing unconditionally and check once.
struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || data.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data[pos++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        data[pos] | (static_cast<std::uint16_t>(data[pos + 1]) << 8));
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string bytes(std::size_t n) {
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return s;
  }
};

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

// Writes the length prefix once the body is complete.
void seal(std::vector<std::uint8_t>& frame) {
  const std::uint32_t body =
      static_cast<std::uint32_t>(frame.size() - sizeof(std::uint32_t));
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body >> (8 * i));
  }
}

// Shared prologue: peel the length prefix, check magic + version, and hand
// back a reader positioned at the first payload field plus the peer's frame
// version (kMinWireVersion..kWireVersion; decoders branch on it for fields
// added after v2).  A cross-version peer gets a diagnostic naming ITS
// version and the range this build speaks — "bad magic" alone would send an
// operator diffing byte dumps when the real story is a version skew.
bool open_frame(std::span<const std::uint8_t> frame, std::uint32_t want_magic,
                const char* what, Reader* r, std::uint8_t* version_out,
                std::string* error) {
  r->data = frame;
  const std::uint32_t body = r->u32();
  if (!r->ok || frame.size() != sizeof(std::uint32_t) + body) {
    return fail(error, std::string("serve wire: truncated ") + what +
                           " frame (" + std::to_string(frame.size()) +
                           " bytes)");
  }
  if (body > kMaxFrameBytes) {
    return fail(error, std::string("serve wire: ") + what +
                           " frame length " + std::to_string(body) +
                           " exceeds the " +
                           std::to_string(kMaxFrameBytes) + "-byte cap");
  }
  const std::uint32_t magic = r->u32();
  if (!r->ok || magic != want_magic) {
    char found[16];
    std::snprintf(found, sizeof(found), "0x%08x", magic);
    return fail(error, std::string("serve wire: bad ") + what + " magic " +
                           found + " (not an " + what + " frame)");
  }
  const std::uint8_t version = r->u8();
  if (!r->ok || version < kMinWireVersion || version > kWireVersion) {
    return fail(error, std::string("serve wire: peer sent ") + what +
                           " frame version " + std::to_string(version) +
                           "; this build speaks versions " +
                           std::to_string(kMinWireVersion) + ".." +
                           std::to_string(kWireVersion));
  }
  *version_out = version;
  return true;
}

}  // namespace

const char* priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kLow:
      return "low";
  }
  return "?";
}

const char* solve_status_name(SolveStatus s) noexcept {
  switch (s) {
    case SolveStatus::kOk:
      return "ok";
    case SolveStatus::kWrongAnswer:
      return "wrong-answer";
    case SolveStatus::kShedDeadline:
      return "shed-deadline";
    case SolveStatus::kShedCapacity:
      return "shed-capacity";
    case SolveStatus::kDeadlineMiss:
      return "deadline-miss";
    case SolveStatus::kError:
      return "error";
  }
  return "?";
}

bool solve_completed(SolveStatus s) noexcept {
  return s == SolveStatus::kOk || s == SolveStatus::kWrongAnswer ||
         s == SolveStatus::kDeadlineMiss;
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_request(const SolveRequest& req) {
  std::vector<std::uint8_t> frame;
  frame.reserve(64);
  put_u32(frame, 0);  // length placeholder, sealed below
  put_u32(frame, kRequestMagic);
  put_u8(frame, kWireVersion);
  put_u64(frame, req.id);
  put_u8(frame, static_cast<std::uint8_t>(req.cls));
  put_u8(frame, static_cast<std::uint8_t>(req.variant));
  put_u8(frame, static_cast<std::uint8_t>(req.priority));
  put_u8(frame, static_cast<std::uint8_t>(req.stencil_mode));
  put_u8(frame, static_cast<std::uint8_t>(req.backend));
  put_u8(frame, req.record_norms ? 1 : 0);
  put_u32(frame, req.nit);
  put_u32(frame, req.gang);
  put_i64(frame, req.deadline_ns);
  // v3 trace context rides at the end so all v2 field offsets are stable.
  put_u64(frame, req.trace_id);
  put_u64(frame, req.trace_parent);
  put_u8(frame, req.trace_flags);
  seal(frame);
  return frame;
}

std::vector<std::uint8_t> encode_result(const SolveResult& res) {
  std::vector<std::uint8_t> frame;
  frame.reserve(96 + res.error.size());
  put_u32(frame, 0);
  put_u32(frame, kResultMagic);
  put_u8(frame, kWireVersion);
  put_u64(frame, res.id);
  put_u8(frame, static_cast<std::uint8_t>(res.status));
  put_u8(frame, res.verified ? 1 : 0);
  put_u32(frame, res.gang);
  put_f64(frame, res.final_norm);
  put_f64(frame, res.seconds);
  put_i64(frame, res.queue_ns);
  put_i64(frame, res.e2e_ns);
  // Diagnostics are bounded so a pathological error string cannot push the
  // frame over kMaxFrameBytes.
  std::string err = res.error;
  constexpr std::size_t kMaxError = 512;
  if (err.size() > kMaxError) err.resize(kMaxError);
  put_u16(frame, static_cast<std::uint16_t>(err.size()));
  frame.insert(frame.end(), err.begin(), err.end());
  put_u64(frame, res.trace_id);  // v3: echo for client-side stitching
  seal(frame);
  return frame;
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

std::size_t frame_size(std::span<const std::uint8_t> data) noexcept {
  if (data.size() < sizeof(std::uint32_t)) return 0;
  std::uint32_t body = 0;
  for (int i = 0; i < 4; ++i) {
    body |= static_cast<std::uint32_t>(data[static_cast<std::size_t>(i)])
            << (8 * i);
  }
  // Corrupt lengths are clamped so stream readers detect the problem via
  // decode_* instead of waiting forever for gigabytes that never come.
  if (body > kMaxFrameBytes) body = static_cast<std::uint32_t>(kMaxFrameBytes);
  const std::size_t total = sizeof(std::uint32_t) + body;
  return data.size() >= total ? total : 0;
}

bool decode_request(std::span<const std::uint8_t> frame, SolveRequest* out,
                    std::string* error) {
  Reader r;
  std::uint8_t version = 0;
  if (!open_frame(frame, kRequestMagic, "request", &r, &version, error)) {
    return false;
  }
  SolveRequest req;
  req.id = r.u64();
  const std::uint8_t cls = r.u8();
  const std::uint8_t variant = r.u8();
  const std::uint8_t priority = r.u8();
  const std::uint8_t stencil = r.u8();
  const std::uint8_t backend = r.u8();
  req.record_norms = r.u8() != 0;
  req.nit = r.u32();
  req.gang = r.u32();
  req.deadline_ns = r.i64();
  if (version >= 3) {
    req.trace_id = r.u64();
    req.trace_parent = r.u64();
    req.trace_flags = r.u8();
  }
  if (!r.ok || r.pos != frame.size()) {
    return fail(error, "serve wire: request frame has wrong payload size");
  }
  if (cls > static_cast<std::uint8_t>(mg::MgClass::C)) {
    return fail(error, "serve wire: request class " + std::to_string(cls) +
                           " out of range");
  }
  if (variant > static_cast<std::uint8_t>(mg::Variant::kSacDirect)) {
    return fail(error, "serve wire: request variant " +
                           std::to_string(variant) + " out of range");
  }
  if (priority >= kPriorityLanes) {
    return fail(error, "serve wire: request priority " +
                           std::to_string(priority) + " out of range");
  }
  if (stencil > static_cast<std::uint8_t>(sac::StencilMode::kPlanes)) {
    return fail(error, "serve wire: request stencil mode " +
                           std::to_string(stencil) + " out of range");
  }
  if (backend > static_cast<std::uint8_t>(sac::BackendKind::kJit)) {
    return fail(error, "serve wire: request backend " +
                           std::to_string(backend) + " out of range");
  }
  req.cls = static_cast<mg::MgClass>(cls);
  req.variant = static_cast<mg::Variant>(variant);
  req.priority = static_cast<Priority>(priority);
  req.stencil_mode = static_cast<sac::StencilMode>(stencil);
  req.backend = static_cast<sac::BackendKind>(backend);
  *out = req;
  return true;
}

bool decode_result(std::span<const std::uint8_t> frame, SolveResult* out,
                   std::string* error) {
  Reader r;
  std::uint8_t version = 0;
  if (!open_frame(frame, kResultMagic, "result", &r, &version, error)) {
    return false;
  }
  SolveResult res;
  res.id = r.u64();
  const std::uint8_t status = r.u8();
  res.verified = r.u8() != 0;
  res.gang = r.u32();
  res.final_norm = r.f64();
  res.seconds = r.f64();
  res.queue_ns = r.i64();
  res.e2e_ns = r.i64();
  const std::uint16_t err_len = r.u16();
  res.error = r.bytes(err_len);
  if (version >= 3) res.trace_id = r.u64();
  if (!r.ok || r.pos != frame.size()) {
    return fail(error, "serve wire: result frame has wrong payload size");
  }
  if (status > static_cast<std::uint8_t>(SolveStatus::kError)) {
    return fail(error, "serve wire: result status " + std::to_string(status) +
                           " out of range");
  }
  res.status = static_cast<SolveStatus>(status);
  *out = std::move(res);
  return true;
}

// ---------------------------------------------------------------------------
// msg::World transport
// ---------------------------------------------------------------------------

std::vector<double> frame_to_doubles(std::span<const std::uint8_t> frame) {
  const std::size_t words = (frame.size() + sizeof(double) - 1) / sizeof(double);
  std::vector<double> packed(1 + words, 0.0);
  packed[0] = static_cast<double>(frame.size());
  if (!frame.empty()) {
    std::memcpy(packed.data() + 1, frame.data(), frame.size());
  }
  return packed;
}

std::vector<std::uint8_t> frame_from_doubles(std::span<const double> packed) {
  SACPP_REQUIRE(!packed.empty(), "serve wire: empty double-packed frame");
  const auto bytes = static_cast<std::size_t>(packed[0]);
  SACPP_REQUIRE(bytes <= (packed.size() - 1) * sizeof(double),
                "serve wire: double-packed frame shorter than its header "
                "claims");
  std::vector<std::uint8_t> frame(bytes);
  if (bytes != 0) std::memcpy(frame.data(), packed.data() + 1, bytes);
  return frame;
}

void send_frame(msg::Comm& comm, int dest, int tag,
                std::span<const std::uint8_t> frame) {
  note_frame(check::Dir::kSend, frame);
  const std::vector<double> packed = frame_to_doubles(frame);
  const double header = static_cast<double>(packed.size());
  comm.send(dest, tag, std::span<const double>(&header, 1));
  comm.send(dest, tag, packed);
}

std::vector<std::uint8_t> recv_frame(msg::Comm& comm, int source, int tag) {
  double header = 0.0;
  comm.recv(source, tag, std::span<double>(&header, 1));
  // The header is peer-controlled: bound it by the largest packed frame the
  // wire format admits BEFORE sizing the reassembly buffer.  Without this
  // check a declared length beyond the cap turns into an attacker-sized
  // allocation (and a recv that can never be satisfied).
  SACPP_REQUIRE(header >= 1.0 &&
                    header <= static_cast<double>(kMaxPackedDoubles),
                "serve wire: declared frame length exceeds the reassembly "
                "buffer cap");
  std::vector<double> packed(static_cast<std::size_t>(header), 0.0);
  comm.recv(source, tag, packed);
  std::vector<std::uint8_t> frame = frame_from_doubles(packed);
  note_frame(check::Dir::kRecv, frame);
  return frame;
}

}  // namespace sacpp::serve
