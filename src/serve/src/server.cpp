#include "sacpp/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#ifdef __linux__
#include <unistd.h>
#endif

#include "sacpp/common/error.hpp"
#include "sacpp/common/lockorder.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/obs/export.hpp"
#include "sacpp/obs/flight.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/trace.hpp"
#include "sacpp/sac/pool.hpp"
#include "sacpp/sac/runtime.hpp"

namespace sacpp::serve {

namespace {

// The Prometheus collector registry is process-lifetime (obs collectors
// cannot be unregistered), so it indirects through this slot: the first
// live service owns it; its destructor clears it.
TrackedMutex g_service_mutex{"serve.collector"};
SolverService* g_current_service = nullptr;
std::atomic<bool> g_collector_registered{false};
std::atomic<bool> g_flight_provider_registered{false};

// Idle gang pools kept for reuse; beyond this they are torn down.
constexpr std::size_t kMaxIdlePools = 4;

constexpr std::int64_t kExecutorParkNs = 20'000'000;  // 20 ms rescan cadence

}  // namespace

// ---------------------------------------------------------------------------
// Config and latency summaries
// ---------------------------------------------------------------------------

ServeConfig::ServeConfig() : base(sac::config()) {}

double histogram_quantile_ns(const obs::LogHistogram& hist, double q) {
  const std::uint64_t total = hist.count();
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int i = 0; i < obs::LogHistogram::kBuckets; ++i) {
    seen += hist.bucket(i);
    if (seen >= target && seen > 0) {
      // Midpoint of the bucket's value range: log buckets only localise to
      // a power of two, so this is an estimate (documented in server.hpp).
      const std::uint64_t upper = obs::LogHistogram::bucket_upper(i);
      const std::uint64_t lower = i <= 1 ? static_cast<std::uint64_t>(i)
                                         : (std::uint64_t{1} << (i - 1));
      return (static_cast<double>(lower) + static_cast<double>(upper)) / 2.0;
    }
  }
  return static_cast<double>(
      obs::LogHistogram::bucket_upper(obs::LogHistogram::kBuckets - 1));
}

LatencySummary summarize_histogram(const obs::LogHistogram& hist) {
  LatencySummary s;
  s.count = hist.count();
  if (s.count == 0) return s;
  constexpr double kMs = 1e6;
  s.mean_ms = static_cast<double>(hist.sum()) /
              static_cast<double>(s.count) / kMs;
  s.p50_ms = histogram_quantile_ns(hist, 0.50) / kMs;
  s.p95_ms = histogram_quantile_ns(hist, 0.95) / kMs;
  s.p99_ms = histogram_quantile_ns(hist, 0.99) / kMs;
  return s;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

SolverService::SolverService(const ServeConfig& cfg)
    : cfg_(cfg),
      queue_(cfg.queue_capacity),
      sampler_(cfg.trace_sample),
      watchdog_(cfg.slo) {
  if (cfg_.total_cores == 0) {
    cfg_.total_cores = std::max(1u, std::thread::hardware_concurrency());
  }
  if (cfg_.executors == 0) cfg_.executors = cfg_.total_cores;
  if (cfg_.max_gang == 0 || cfg_.max_gang > cfg_.total_cores) {
    cfg_.max_gang = cfg_.total_cores;
  }
  if (cfg_.gang_small == 0) cfg_.gang_small = 1;
  if (cfg_.gang_large == 0) {
    cfg_.gang_large = std::max(1u, cfg_.total_cores / 2);
  }
  cores_free_ = cfg_.total_cores;
  start_ns_ = obs::now_ns();

  {
    std::lock_guard<TrackedMutex> lock(g_service_mutex);
    if (g_current_service == nullptr) g_current_service = this;
  }
  if (!g_collector_registered.exchange(true)) {
    obs::register_collector([](obs::MetricSink& sink) {
      std::lock_guard<TrackedMutex> lock(g_service_mutex);
      if (g_current_service != nullptr) g_current_service->collect(sink);
    });
  }

  // SLO feedback loop: the queue consults the watchdog's relaxed overload
  // flag on the push path, and reports every job it settles itself (sheds,
  // rejections, evictions) so the shed ratio covers requests no executor
  // ever saw.
  queue_.set_overload_advisor([this] { return watchdog_.overloaded(); });
  queue_.set_settle_observer([this](Priority lane, SolveStatus status) {
    watchdog_.observe(lane, status, -1);
  });

  // Flight recorder: the black-box dump gains a "serve" section describing
  // the live service (queue/executor/core state) and a "locks" section with
  // the tracked-lock graph.  Like the metrics collector, providers are
  // process-lifetime, so they indirect through the current-service slot.
  if (!cfg_.flight_path.empty()) {
    obs::flight_configure(cfg_.flight_path);
    obs::flight_install_signal_handlers();
  }
  if (!g_flight_provider_registered.exchange(true)) {
    obs::flight_register_provider("serve", [] {
      std::lock_guard<TrackedMutex> lock(g_service_mutex);
      if (g_current_service == nullptr) return std::string("null");
      const ServerSnapshot snap = g_current_service->snapshot();
      std::string out = "{";
      const auto field = [&out](const char* key, std::uint64_t v,
                                bool first = false) {
        if (!first) out += ",";
        out += "\"";
        out += key;
        out += "\":";
        out += std::to_string(v);
      };
      field("queue_depth", snap.queue_depth, true);
      field("active_jobs", snap.active_jobs);
      field("cores_in_use", snap.cores_in_use);
      field("cores_total", snap.total_cores);
      field("submitted", snap.counters.submitted);
      field("completed_ok", snap.counters.completed_ok);
      field("errors", snap.counters.errors);
      field("deadline_miss", snap.counters.deadline_miss);
      field("rejected", snap.counters.queue.rejected);
      field("evicted", snap.counters.queue.evicted);
      field("shed_deadline", snap.counters.queue.shed_deadline);
      field("shed_overload", snap.counters.queue.shed_overload);
      out += "}";
      return out;
    });
    obs::flight_register_provider("locks", [] {
      const auto& reg = LockRegistry::instance();
      std::string out = "{\"tracked\":";
      out += std::to_string(reg.lock_count());
      out += ",\"edges\":";
      out += std::to_string(reg.edge_count());
      out += ",\"cycles\":";
      out += std::to_string(reg.find_cycles().size());
      out += "}";
      return out;
    });
  }

  executors_.reserve(cfg_.executors);
  for (unsigned slot = 0; slot < cfg_.executors; ++slot) {
    executors_.emplace_back([this, slot] { executor_loop(slot); });
  }
  if (cfg_.trim_interval_ns > 0) {
    housekeeper_ = std::thread([this] { housekeeping_loop(); });
  }
}

SolverService::~SolverService() {
  stop();
  std::lock_guard<TrackedMutex> lock(g_service_mutex);
  if (g_current_service == this) g_current_service = nullptr;
}

void SolverService::stop() {
  std::lock_guard<TrackedMutex> stop_lock(stop_mutex_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  queue_.close();
  queue_.shed_all(SolveStatus::kShedCapacity, "service stopping");
  queue_.poke();
  housekeeping_cv_.notify_all();
  for (auto& t : executors_) t.join();
  executors_.clear();
  if (housekeeper_.joinable()) housekeeper_.join();
  {
    std::lock_guard<TrackedMutex> lock(pools_mutex_);
    idle_pools_.clear();
  }
  stopped_ = true;
}

void SolverService::drain() {
  std::unique_lock<TrackedMutex> lock(done_mutex_);
  // Timed re-checks rather than pure waits: deadline sheds inside the
  // queue's sweep can empty it without a completion notification.
  while (queue_.depth() != 0 ||
         active_jobs_.load(std::memory_order_acquire) != 0) {
    done_cv_.wait_for(lock, std::chrono::milliseconds(5));
  }
}

bool SolverService::drain_for(std::int64_t timeout_ns) {
  const std::int64_t deadline = obs::now_ns() + timeout_ns;
  std::unique_lock<TrackedMutex> lock(done_mutex_);
  while (queue_.depth() != 0 ||
         active_jobs_.load(std::memory_order_acquire) != 0) {
    if (obs::now_ns() >= deadline) {
      // A drain that does not converge is exactly what the black box is
      // for: dump queue/executor/lock state before the caller escalates.
      obs::flight_dump("drain-timeout", /*force=*/true);
      return false;
    }
    done_cv_.wait_for(lock, std::chrono::milliseconds(5));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

unsigned SolverService::resolve_gang(const SolveRequest& req) const {
  unsigned gang = req.gang;
  if (gang == 0) {
    const bool small = req.cls == mg::MgClass::S || req.cls == mg::MgClass::W;
    gang = small ? cfg_.gang_small : cfg_.gang_large;
  }
  return std::clamp(gang, 1u, cfg_.max_gang);
}

std::future<SolveResult> SolverService::submit(SolveRequest req) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (req.trace_id == 0 && cfg_.trace_sample > 0.0) {
    // In-process callers do not mint their own contexts; give every request
    // one so the tail sampler can decide retention after the outcome is
    // known (stamping is cheap — retention is what is sampled).
    req.trace_id = obs::mint_trace_id();
    req.trace_flags |= obs::kTraceSampled;
  }
  const std::int64_t now = obs::now_ns();
  QueuedJob job;
  job.request = req;
  job.gang = resolve_gang(req);
  job.submit_ns = now;
  job.enqueue_ns = now;
  const std::int64_t budget =
      req.deadline_ns > 0 ? req.deadline_ns : cfg_.default_deadline_ns;
  job.deadline_ns = budget > 0 ? now + budget : 0;
  std::future<SolveResult> result = job.promise.get_future();
  queue_.push(std::move(job));  // rejection/eviction settles promises inside
  return result;
}

// ---------------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------------

void SolverService::executor_loop(unsigned slot) {
  obs::set_thread_name("serve-exec-" + std::to_string(slot));
  for (;;) {
    QueuedJob job;
    bool have = false;
    {
      // pop_best and the core-budget deduction are one critical section, so
      // two executors can never both claim the same free cores.  active_jobs_
      // must rise inside the same section: incrementing it after the lock
      // drops opens a window where depth == 0 and active_jobs == 0 while a
      // popped job is still in flight, letting drain() return early.
      std::lock_guard<TrackedMutex> lock(dispatch_mutex_);
      if (queue_.pop_best(cores_free_, obs::now_ns(), &job)) {
        cores_free_ -= job.gang;
        active_jobs_.fetch_add(1, std::memory_order_acq_rel);
        have = true;
      }
    }
    if (!have) {
      if (stopping_.load(std::memory_order_acquire) && queue_.depth() == 0) {
        return;
      }
      queue_.wait_for_work(kExecutorParkNs);
      continue;
    }
    const unsigned gang = job.gang;
    cores_in_use_.fetch_add(gang, std::memory_order_relaxed);
    run_job(std::move(job));
    cores_in_use_.fetch_sub(gang, std::memory_order_relaxed);
    {
      std::lock_guard<TrackedMutex> lock(dispatch_mutex_);
      cores_free_ += gang;
    }
    active_jobs_.fetch_sub(1, std::memory_order_acq_rel);
    queue_.poke();  // freed cores: parked executors should rescan
    done_cv_.notify_all();
  }
}

void SolverService::run_job(QueuedJob job) {
  const std::int64_t dispatch_ns = obs::now_ns();
  const std::int64_t queue_ns = std::max<std::int64_t>(
      0, dispatch_ns - job.enqueue_ns);
  // Bind the request's trace context for the whole dispatch: every span the
  // solve records below — the serve_job exec span, with-loops, V-cycle
  // levels, pool traffic (parallel_for re-binds on the gang workers) — gets
  // stamped with this id.
  const obs::TraceContext trace_ctx{job.request.trace_id,
                                    job.request.trace_parent,
                                    job.request.trace_flags};
  const obs::TraceBinding trace_binding(trace_ctx);
  queue_wait_hist_.observe(static_cast<std::uint64_t>(queue_ns),
                           trace_ctx.trace_id);
  if (obs::enabled()) [[unlikely]] {
    obs::observe(obs::Hist::kServeQueueNs,
                 static_cast<std::uint64_t>(queue_ns), trace_ctx.trace_id);
    if (trace_ctx.active()) {
      // Retroactive queue-wait span: the wait already happened (on no
      // particular thread), so record it here with explicit bounds.
      obs::record_span(obs::SpanKind::kPhase, obs::kSpanServeQueue,
                       job.enqueue_ns, queue_ns,
                       static_cast<std::int64_t>(job.request.priority));
    }
  }

  SolveResult res;
  res.id = job.request.id;
  res.gang = job.gang;
  res.queue_ns = queue_ns;
  res.trace_id = trace_ctx.trace_id;
  bool executed = false;

  if (job.deadline_ns != 0 && dispatch_ns > job.deadline_ns) {
    // The sweep in pop_best bounds this window, but it can still close
    // between the sweep and the dispatch.
    res.status = SolveStatus::kShedDeadline;
    res.error = "deadline expired at dispatch";
  } else {
    executed = true;
    // Per-job isolation: a config snapshot bound to this thread (and
    // propagated to pool workers by parallel_for) plus, for gangs, a
    // private ThreadPool — the process-global config()/runtime() are never
    // consulted while this job runs.
    sac::SacConfig snapshot = cfg_.base;
    snapshot.stencil_mode = job.request.stencil_mode;
    snapshot.backend = job.request.backend;
    snapshot.mt_enabled = job.gang > 1;
    snapshot.mt_threads = job.gang;
    sac::ConfigBinding config_binding(&snapshot);
    std::unique_ptr<sac::ThreadPool> pool;
    std::optional<sac::RuntimeBinding> runtime_binding;
    if (job.gang > 1) {
      pool = acquire_pool(job.gang);
      runtime_binding.emplace(pool.get());
    }
    mg::MgSpec spec = mg::MgSpec::for_class(job.request.cls);
    if (job.request.nit != 0) spec.nit = static_cast<int>(job.request.nit);
    mg::RunOptions opts;
    opts.warmup = cfg_.warmup;
    opts.record_norms = job.request.record_norms;
    try {
      const mg::MgResult run = mg::run_benchmark(job.request.variant, spec,
                                                 opts);
      res.final_norm = run.final_norm;
      res.seconds = run.seconds;
      bool known = false;
      res.verified = mg::verify(run, spec, &known);
      res.status = (known && !res.verified) ? SolveStatus::kWrongAnswer
                                            : SolveStatus::kOk;
    } catch (const std::exception& e) {
      res.status = SolveStatus::kError;
      res.error = e.what();
    } catch (...) {
      res.status = SolveStatus::kError;
      res.error = "unknown exception in solver";
    }
    runtime_binding.reset();
    if (pool) release_pool(std::move(pool));
  }

  const std::int64_t end_ns = obs::now_ns();
  const std::int64_t exec_ns = std::max<std::int64_t>(0, end_ns - dispatch_ns);
  res.e2e_ns = std::max<std::int64_t>(0, end_ns - job.submit_ns);
  if (res.status == SolveStatus::kOk && job.deadline_ns != 0 &&
      end_ns > job.deadline_ns) {
    res.status = SolveStatus::kDeadlineMiss;
  }

  switch (res.status) {
    case SolveStatus::kOk:
      completed_ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SolveStatus::kDeadlineMiss:
      deadline_miss_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SolveStatus::kWrongAnswer:
      wrong_answer_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SolveStatus::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }

  exec_hist_.observe(static_cast<std::uint64_t>(exec_ns), trace_ctx.trace_id);
  e2e_hist_[static_cast<std::size_t>(job.request.priority)].observe(
      static_cast<std::uint64_t>(res.e2e_ns), trace_ctx.trace_id);
  if (obs::enabled()) [[unlikely]] {
    obs::observe(obs::Hist::kServeJobNs, static_cast<std::uint64_t>(exec_ns),
                 trace_ctx.trace_id);
    obs::observe(obs::Hist::kServeE2eNs,
                 static_cast<std::uint64_t>(res.e2e_ns), trace_ctx.trace_id);
    if (executed) {
      // Recorded retroactively with exact dispatch -> completion bounds so
      // queue + exec tile the e2e root (the decomposition gate): a scoped
      // span around just the solve would miss pool spin-up and verification.
      obs::record_span(obs::SpanKind::kPhase, obs::kSpanServeExec,
                       dispatch_ns, exec_ns,
                       static_cast<std::int64_t>(job.request.id));
    }
    if (trace_ctx.active()) {
      // The stitched tree's root: submit -> completion, enclosing the queue
      // and exec spans recorded above.
      obs::record_span(obs::SpanKind::kPhase, obs::kSpanServeE2e,
                       job.submit_ns, res.e2e_ns,
                       static_cast<std::int64_t>(job.request.id));
    }
  }

  // SLO accounting (also drives the queue's overload advisory) and the
  // tail-retention decision.
  watchdog_.observe(job.request.priority, res.status, res.e2e_ns);
  watchdog_.observe_queue(queue_.depth(), cfg_.queue_capacity);
  sampler_.observe(static_cast<std::uint64_t>(res.e2e_ns));
  if (trace_ctx.active()) {
    const bool anomalous = res.status != SolveStatus::kOk;
    obs::RetainReason reason = obs::RetainReason::kSampled;
    if (sampler_.should_retain(static_cast<std::uint64_t>(res.e2e_ns),
                               anomalous, trace_ctx.flags, trace_ctx.trace_id,
                               &reason)) {
      if (anomalous) {
        switch (res.status) {
          case SolveStatus::kDeadlineMiss:
            reason = obs::RetainReason::kDeadline;
            break;
          case SolveStatus::kShedDeadline:
          case SolveStatus::kShedCapacity:
            reason = obs::RetainReason::kShed;
            break;
          default:
            reason = obs::RetainReason::kError;
            break;
        }
      }
      obs::TraceMeta meta;
      meta.trace_id = trace_ctx.trace_id;
      meta.request_id = job.request.id;
      meta.reason = reason;
      meta.status = solve_status_name(res.status);
      meta.priority = static_cast<int>(job.request.priority);
      meta.submit_ns = job.submit_ns;
      meta.queue_ns = queue_ns;
      meta.exec_ns = exec_ns;
      meta.e2e_ns = res.e2e_ns;
      meta.gang = static_cast<int>(job.gang);
      meta.flags = trace_ctx.flags;
      obs::retain_trace(meta);
    }
  }
  if (res.status == SolveStatus::kDeadlineMiss ||
      res.status == SolveStatus::kShedDeadline) {
    // Black-box trigger: a missed deadline is the moment operators want the
    // rings frozen (rate-limited inside flight_dump; no-op unconfigured).
    obs::flight_dump("deadline-miss");
  }

  job.promise.set_value(std::move(res));
}

// ---------------------------------------------------------------------------
// Gang pools and housekeeping
// ---------------------------------------------------------------------------

std::unique_ptr<sac::ThreadPool> SolverService::acquire_pool(unsigned gang) {
  {
    std::lock_guard<TrackedMutex> lock(pools_mutex_);
    for (auto it = idle_pools_.begin(); it != idle_pools_.end(); ++it) {
      if ((*it)->thread_count() == gang) {
        std::unique_ptr<sac::ThreadPool> pool = std::move(*it);
        idle_pools_.erase(it);
        return pool;
      }
    }
  }
  return std::make_unique<sac::ThreadPool>(gang);
}

void SolverService::release_pool(std::unique_ptr<sac::ThreadPool> pool) {
  std::lock_guard<TrackedMutex> lock(pools_mutex_);
  if (idle_pools_.size() < kMaxIdlePools) {
    idle_pools_.push_back(std::move(pool));
  }
  // else: dropped here, tearing the pool's threads down.
}

void SolverService::housekeeping_loop() {
  obs::set_thread_name("serve-housekeeper");
  std::unique_lock<TrackedMutex> lock(housekeeping_mutex_);
  while (!stopping_.load(std::memory_order_acquire)) {
    housekeeping_cv_.wait_for(
        lock, std::chrono::nanoseconds(cfg_.trim_interval_ns));
    if (stopping_.load(std::memory_order_acquire)) break;
    // Epoch trim releases depot blocks idle for two full epochs; safe under
    // live traffic (the pool is internally synchronised), so a burst's
    // arena pages drain back between bursts without stalling jobs.
    sac::BufferPool::instance().trim();
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

ServerSnapshot SolverService::snapshot() const {
  ServerSnapshot snap;
  snap.counters.submitted = submitted_.load(std::memory_order_relaxed);
  snap.counters.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  snap.counters.wrong_answer = wrong_answer_.load(std::memory_order_relaxed);
  snap.counters.errors = errors_.load(std::memory_order_relaxed);
  snap.counters.deadline_miss =
      deadline_miss_.load(std::memory_order_relaxed);
  snap.counters.queue = queue_.counters();
  snap.queue_depth = queue_.depth();
  snap.active_jobs = active_jobs_.load(std::memory_order_relaxed);
  snap.cores_in_use = cores_in_use_.load(std::memory_order_relaxed);
  snap.total_cores = cfg_.total_cores;
  snap.uptime_seconds =
      static_cast<double>(obs::now_ns() - start_ns_) / 1e9;
  snap.queue_wait = summarize_histogram(queue_wait_hist_);
  snap.exec = summarize_histogram(exec_hist_);
  for (int lane = 0; lane < kPriorityLanes; ++lane) {
    snap.e2e[lane] = summarize_histogram(e2e_hist_[lane]);
  }
  return snap;
}

void SolverService::collect(obs::MetricSink& sink) const {
  const ServerSnapshot snap = snapshot();
  sink.gauge("sacpp_serve_uptime_seconds", snap.uptime_seconds,
             "seconds since the solver service started");
  const long long rss = rss_bytes();
  if (rss >= 0) {
    sink.gauge("sacpp_serve_rss_bytes", static_cast<double>(rss),
               "resident set size of the serving process");
  }
  sink.gauge("sacpp_serve_active_jobs", snap.active_jobs,
             "solves currently executing");
  sink.gauge("sacpp_serve_queue_depth", static_cast<double>(snap.queue_depth),
             "requests waiting in the admission queue");
  sink.gauge("sacpp_serve_cores_in_use", snap.cores_in_use,
             "worker cores granted to running solves");
  sink.gauge("sacpp_serve_cores_total", snap.total_cores,
             "core budget shared by concurrent solves");
  sink.counter("sacpp_serve_requests_total",
               static_cast<double>(snap.counters.submitted),
               "solve requests submitted");
  sink.counter("sacpp_serve_completed_total",
               static_cast<double>(snap.counters.completed_ok),
               "solves completed with a verified (or unknown-class) answer");
  sink.counter("sacpp_serve_wrong_answer_total",
               static_cast<double>(snap.counters.wrong_answer),
               "solves whose result failed class verification");
  sink.counter("sacpp_serve_errors_total",
               static_cast<double>(snap.counters.errors),
               "solves that raised an error");
  sink.counter("sacpp_serve_deadline_miss_total",
               static_cast<double>(snap.counters.deadline_miss),
               "solves that finished after their deadline");
  sink.counter("sacpp_serve_shed_deadline_total",
               static_cast<double>(snap.counters.queue.shed_deadline),
               "requests shed because their deadline expired while queued");
  sink.counter("sacpp_serve_rejected_total",
               static_cast<double>(snap.counters.queue.rejected),
               "requests rejected by a full admission queue");
  sink.counter("sacpp_serve_evicted_total",
               static_cast<double>(snap.counters.queue.evicted),
               "queued requests evicted by higher-priority arrivals");
  sink.counter("sacpp_serve_dispatched_total",
               static_cast<double>(snap.counters.queue.dispatched),
               "requests handed to an executor");
  sink.counter("sacpp_serve_shed_overload_total",
               static_cast<double>(snap.counters.queue.shed_overload),
               "low-priority requests shed on the SLO overload advisory");
  watchdog_.collect(sink);
}

long long SolverService::rss_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return -1;
  long long total_pages = 0;
  long long rss_pages = 0;
  const int got = std::fscanf(f, "%lld %lld", &total_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return -1;
  return rss_pages * static_cast<long long>(sysconf(_SC_PAGESIZE));
#else
  return -1;
#endif
}

}  // namespace sacpp::serve
