#include "sacpp/serve/slo.hpp"

#include <algorithm>
#include <string>

#include "sacpp/obs/obs.hpp"

namespace sacpp::serve {

namespace {

bool is_shed(SolveStatus s) noexcept {
  return s == SolveStatus::kShedDeadline || s == SolveStatus::kShedCapacity;
}

}  // namespace

void SloWatchdog::maybe_rotate_locked(std::int64_t now) {
  if (epoch_start_ns_ < 0) epoch_start_ns_ = now;
  const std::int64_t half = std::max<std::int64_t>(1, cfg_.window_ns / 2);
  if (now - epoch_start_ns_ < half) return;
  epoch_ ^= 1;
  epoch_start_ns_ = now;
  for (auto& lane : lanes_) lane.epochs[epoch_].clear();
  submitted_[epoch_] = 0;
  shed_[epoch_] = 0;
}

std::int64_t SloWatchdog::p99_locked(int lane) const {
  const obs::LogHistogram& a = lanes_[lane].epochs[0];
  const obs::LogHistogram& b = lanes_[lane].epochs[1];
  const std::uint64_t total = a.count() + b.count();
  if (total == 0) return 0;
  const std::uint64_t target = total - total / 100;  // rank of the p99 sample
  std::uint64_t seen = 0;
  for (int i = 0; i < obs::LogHistogram::kBuckets; ++i) {
    seen += a.bucket(i) + b.bucket(i);
    if (seen >= target) {
      // Conservative: the bucket's lower bound, so a burn alarm means the
      // p99 is at least this slow even under log-bucket quantisation.
      return i <= 1 ? i : static_cast<std::int64_t>(std::uint64_t{1} << (i - 1));
    }
  }
  return 0;
}

void SloWatchdog::recompute_locked() {
  bool over = false;
  for (int lane = 0; lane < kPriorityLanes; ++lane) {
    const std::int64_t budget = cfg_.p99_budget_ns[lane];
    if (budget > 0 && p99_locked(lane) > budget) over = true;
  }
  const std::uint64_t sub = submitted_[0] + submitted_[1];
  const std::uint64_t shed = shed_[0] + shed_[1];
  if (cfg_.max_shed_ratio > 0 && sub > 0 &&
      static_cast<double>(shed) >
          cfg_.max_shed_ratio * static_cast<double>(sub)) {
    over = true;
  }
  if (cfg_.max_queue_saturation > 0 && queue_capacity_ > 0 &&
      static_cast<double>(queue_depth_) >
          cfg_.max_queue_saturation * static_cast<double>(queue_capacity_)) {
    over = true;
  }
  overloaded_.store(over, std::memory_order_relaxed);
}

void SloWatchdog::observe(Priority lane, SolveStatus status,
                          std::int64_t e2e_ns) {
  std::lock_guard<TrackedMutex> lock(mutex_);
  maybe_rotate_locked(obs::now_ns());
  submitted_[epoch_] += 1;
  if (is_shed(status)) shed_[epoch_] += 1;
  if (e2e_ns >= 0) {
    lanes_[static_cast<int>(lane)].epochs[epoch_].observe(
        static_cast<std::uint64_t>(e2e_ns));
  }
  recompute_locked();
}

void SloWatchdog::observe_queue(std::size_t depth, std::size_t capacity) {
  std::lock_guard<TrackedMutex> lock(mutex_);
  queue_depth_ = depth;
  queue_capacity_ = capacity == 0 ? 1 : capacity;
  recompute_locked();
}

std::int64_t SloWatchdog::window_p99_ns(Priority lane) const {
  std::lock_guard<TrackedMutex> lock(mutex_);
  return p99_locked(static_cast<int>(lane));
}

double SloWatchdog::burn_rate(Priority lane) const {
  std::lock_guard<TrackedMutex> lock(mutex_);
  const std::int64_t budget = cfg_.p99_budget_ns[static_cast<int>(lane)];
  if (budget <= 0) return 0.0;
  return static_cast<double>(p99_locked(static_cast<int>(lane))) /
         static_cast<double>(budget);
}

double SloWatchdog::shed_ratio() const {
  std::lock_guard<TrackedMutex> lock(mutex_);
  const std::uint64_t sub = submitted_[0] + submitted_[1];
  if (sub == 0) return 0.0;
  return static_cast<double>(shed_[0] + shed_[1]) / static_cast<double>(sub);
}

void SloWatchdog::rotate_now() {
  std::lock_guard<TrackedMutex> lock(mutex_);
  epoch_ ^= 1;
  epoch_start_ns_ = obs::now_ns();
  for (auto& lane : lanes_) lane.epochs[epoch_].clear();
  submitted_[epoch_] = 0;
  shed_[epoch_] = 0;
  recompute_locked();
}

void SloWatchdog::collect(obs::MetricSink& sink) const {
  std::lock_guard<TrackedMutex> lock(mutex_);
  for (int lane = 0; lane < kPriorityLanes; ++lane) {
    const auto p = static_cast<Priority>(lane);
    const std::string stem =
        std::string("sacpp_slo_") + priority_name(p);
    sink.gauge(stem + "_p99_window_ns",
               static_cast<double>(p99_locked(lane)),
               "windowed p99 end-to-end latency for this lane");
    const std::int64_t budget = cfg_.p99_budget_ns[lane];
    if (budget > 0) {
      sink.gauge(stem + "_burn_rate",
                 static_cast<double>(p99_locked(lane)) /
                     static_cast<double>(budget),
                 "windowed p99 over the lane's latency budget");
    }
  }
  const std::uint64_t sub = submitted_[0] + submitted_[1];
  const std::uint64_t shed = shed_[0] + shed_[1];
  sink.gauge("sacpp_slo_shed_ratio",
             sub == 0 ? 0.0
                      : static_cast<double>(shed) / static_cast<double>(sub),
             "windowed shed fraction of submitted requests");
  sink.gauge("sacpp_slo_queue_saturation",
             queue_capacity_ == 0
                 ? 0.0
                 : static_cast<double>(queue_depth_) /
                       static_cast<double>(queue_capacity_),
             "admission queue depth over capacity (last sample)");
  sink.gauge("sacpp_slo_overloaded",
             overloaded_.load(std::memory_order_relaxed) ? 1.0 : 0.0,
             "advisory overload signal consulted by the admission queue");
}

}  // namespace sacpp::serve
