#include "sacpp/serve/queue.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "sacpp/common/error.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/trace.hpp"

namespace sacpp::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  SACPP_REQUIRE(capacity >= 1, "admission queue capacity must be >= 1");
}

AdmissionQueue::~AdmissionQueue() {
  // A queue destroyed while jobs are still parked must settle them: letting
  // the promises die unset turns every waiter's future.get() into
  // std::future_error(broken_promise) instead of an explicit shed verdict.
  shed_all(SolveStatus::kShedCapacity, "admission queue destroyed");
}

std::size_t AdmissionQueue::depth_locked() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane.size();
  return n;
}

void AdmissionQueue::settle(QueuedJob&& job, SolveStatus status,
                            const std::string& why) {
  SolveResult res;
  res.id = job.request.id;
  res.status = status;
  res.gang = job.gang;
  res.error = why;
  res.trace_id = job.request.trace_id;
  const std::int64_t now = obs::now_ns();
  if (job.enqueue_ns > 0) res.queue_ns = std::max<std::int64_t>(0, now - job.enqueue_ns);
  if (job.submit_ns > 0) res.e2e_ns = std::max<std::int64_t>(0, now - job.submit_ns);
  if (job.request.trace_id != 0) {
    // A shed is always an anomaly worth a post-mortem: record the span pair
    // on this thread's ring and retain the trace unconditionally, bypassing
    // the tail sampler.
    const obs::TraceContext ctx{job.request.trace_id, job.request.trace_parent,
                                job.request.trace_flags};
    if (obs::enabled()) {
      const obs::TraceBinding bind(ctx);
      if (job.enqueue_ns > 0) {
        obs::record_span(obs::SpanKind::kPhase, obs::kSpanServeQueue,
                         job.enqueue_ns, res.queue_ns,
                         static_cast<std::int64_t>(job.request.priority));
      }
      if (job.submit_ns > 0) {
        obs::record_span(obs::SpanKind::kPhase, obs::kSpanServeE2e,
                         job.submit_ns, res.e2e_ns,
                         static_cast<std::int64_t>(job.request.id));
      }
    }
    obs::TraceMeta meta;
    meta.trace_id = job.request.trace_id;
    meta.request_id = job.request.id;
    meta.reason = obs::RetainReason::kShed;
    meta.status = solve_status_name(status);
    meta.priority = static_cast<int>(job.request.priority);
    meta.submit_ns = job.submit_ns;
    meta.queue_ns = res.queue_ns;
    meta.exec_ns = 0;
    meta.e2e_ns = res.e2e_ns;
    meta.gang = job.gang;
    meta.flags = job.request.trace_flags;
    obs::retain_trace(meta);
  }
  if (settle_observer_) settle_observer_(job.request.priority, status);
  job.promise.set_value(std::move(res));
}

void AdmissionQueue::set_overload_advisor(OverloadAdvisor advisor) {
  std::lock_guard<TrackedMutex> lock(mutex_);
  overload_advisor_ = std::move(advisor);
}

void AdmissionQueue::set_settle_observer(SettleObserver observer) {
  std::lock_guard<TrackedMutex> lock(mutex_);
  settle_observer_ = std::move(observer);
}

AdmissionQueue::Admit AdmissionQueue::push(QueuedJob&& job) {
  Admit verdict;
  {
    std::lock_guard<TrackedMutex> lock(mutex_);
    if (closed_) {
      settle(std::move(job), SolveStatus::kShedCapacity,
             "admission queue closed (service stopping)");
      return Admit::kClosed;
    }
    const auto lane = static_cast<std::size_t>(job.request.priority);
    if (job.request.priority == Priority::kLow && overload_advisor_ &&
        overload_advisor_()) {
      // SLO feedback: under overload an incoming LOW job would only age out
      // in a lane that is not draining in budget — shed it at the door so
      // the caller can back off immediately.
      counters_.shed_overload += 1;
      settle(std::move(job), SolveStatus::kShedCapacity,
             "shed at admission: SLO watchdog reports overload");
      return Admit::kShedOverload;
    }
    if (depth_locked() >= capacity_) {
      // Full: displace the newest job of the lowest lane that is strictly
      // lower priority than the incoming job, if any.
      std::size_t victim_lane = kPriorityLanes;
      for (std::size_t l = kPriorityLanes; l-- > lane + 1;) {
        if (!lanes_[l].empty()) {
          victim_lane = l;
          break;
        }
      }
      if (victim_lane == kPriorityLanes) {
        counters_.rejected += 1;
        settle(std::move(job), SolveStatus::kShedCapacity,
               "admission queue full");
        return Admit::kRejected;
      }
      QueuedJob victim = std::move(lanes_[victim_lane].back());
      lanes_[victim_lane].pop_back();
      counters_.evicted += 1;
      settle(std::move(victim), SolveStatus::kShedCapacity,
             "evicted by a higher-priority request");
      lanes_[lane].push_back(std::move(job));
      counters_.accepted += 1;
      verdict = Admit::kAcceptedEvicted;
    } else {
      lanes_[lane].push_back(std::move(job));
      counters_.accepted += 1;
      verdict = Admit::kAccepted;
    }
    counters_.peak_depth = std::max(counters_.peak_depth, depth_locked());
  }
  cv_.notify_all();
  return verdict;
}

bool AdmissionQueue::pop_best(unsigned free_cores, std::int64_t now_ns,
                              QueuedJob* out) {
  std::lock_guard<TrackedMutex> lock(mutex_);
  // Deadline sweep: a job whose budget already expired can only produce a
  // late answer, so shed it here rather than burn cores on it.
  for (auto& lane : lanes_) {
    for (auto it = lane.begin(); it != lane.end();) {
      if (it->deadline_ns != 0 && now_ns > it->deadline_ns) {
        counters_.shed_deadline += 1;
        settle(std::move(*it), SolveStatus::kShedDeadline,
               "deadline expired while queued");
        it = lane.erase(it);
      } else {
        ++it;
      }
    }
  }
  // First job in priority-then-FIFO order (the "head"), and the first job in
  // that order that actually fits the core budget.
  std::deque<QueuedJob>* fit_lane = nullptr;
  std::deque<QueuedJob>::iterator fit_it;
  bool fit_is_head = true;
  for (auto& lane : lanes_) {
    for (auto it = lane.begin(); it != lane.end(); ++it) {
      if (it->gang <= free_cores) {
        fit_lane = &lane;
        fit_it = it;
        goto found;
      }
      fit_is_head = false;  // something ahead of the fit was skipped
    }
  }
found:
  if (fit_lane == nullptr) return false;
  if (!fit_is_head) {
    // Bypassing the head job: allowed a bounded number of consecutive
    // times, after which dispatch stalls until the head fits (anti-
    // starvation for wide gangs).
    if (head_bypass_ >= kMaxHeadBypass) return false;
    head_bypass_ += 1;
  } else {
    head_bypass_ = 0;
  }
  *out = std::move(*fit_it);
  fit_lane->erase(fit_it);
  counters_.dispatched += 1;
  return true;
}

void AdmissionQueue::wait_for_work(std::int64_t timeout_ns) {
  std::unique_lock<TrackedMutex> lock(mutex_);
  if (closed_ || depth_locked() != 0) return;
  cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns));
}

void AdmissionQueue::poke() { cv_.notify_all(); }

void AdmissionQueue::close() {
  {
    std::lock_guard<TrackedMutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<TrackedMutex> lock(mutex_);
  return closed_;
}

std::size_t AdmissionQueue::shed_all(SolveStatus status,
                                     const std::string& why) {
  std::lock_guard<TrackedMutex> lock(mutex_);
  std::size_t flushed = 0;
  for (auto& lane : lanes_) {
    for (auto& job : lane) {
      settle(std::move(job), status, why);
      flushed += 1;
    }
    lane.clear();
  }
  return flushed;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<TrackedMutex> lock(mutex_);
  return depth_locked();
}

std::size_t AdmissionQueue::lane_depth(Priority p) const {
  std::lock_guard<TrackedMutex> lock(mutex_);
  return lanes_[static_cast<std::size_t>(p)].size();
}

QueueCounters AdmissionQueue::counters() const {
  std::lock_guard<TrackedMutex> lock(mutex_);
  return counters_;
}

}  // namespace sacpp::serve
