#pragma once
// Bounded admission queue with priority lanes and deadline shedding.
//
// One FIFO lane per Priority.  The queue owns each queued job's result
// promise, so every admission decision — accept, reject-at-capacity, evict a
// lower-priority job, shed an expired deadline — fulfils the affected
// promise immediately; callers always get an answer, never a dangling
// future.
//
// Backpressure policy (docs/serve.md):
//   * Total depth is bounded by `capacity`.  A push into a full queue evicts
//     the NEWEST job of the LOWEST non-empty lane that is strictly lower
//     priority than the incoming job (its promise resolves kShedCapacity);
//     with no such victim the incoming job itself is rejected.
//   * pop_best() sweeps expired deadlines first (kShedDeadline), then scans
//     lanes high -> low, FIFO within a lane, returning the first job whose
//     gang fits the caller's free core budget.
//   * A small job may bypass a too-big head-of-line job at most
//     kMaxHeadBypass consecutive times; after that the queue holds dispatch
//     until the head job fits, so wide gangs cannot starve.
//
// Thread safety: fully internally synchronised; any thread may push, pop,
// or poke.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>

#include "sacpp/common/lockorder.hpp"
#include "sacpp/serve/job.hpp"

namespace sacpp::serve {

// A request plus the bookkeeping the scheduler needs.  Timestamps are on the
// obs::now_ns() steady clock.
struct QueuedJob {
  SolveRequest request;
  std::uint32_t gang = 1;        // resolved worker-thread grant
  std::int64_t submit_ns = 0;    // submit() entry
  std::int64_t enqueue_ns = 0;   // admission into the queue
  std::int64_t deadline_ns = 0;  // absolute deadline; 0 = none
  std::promise<SolveResult> promise;
};

struct QueueCounters {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;       // pushed into a full queue, no victim
  std::uint64_t evicted = 0;        // displaced by a higher-priority push
  std::uint64_t shed_deadline = 0;  // expired before dispatch
  std::uint64_t shed_overload = 0;  // low-priority push shed by the SLO advisory
  std::uint64_t dispatched = 0;
  std::size_t peak_depth = 0;
};

class AdmissionQueue {
 public:
  // Consecutive dispatches allowed to jump over a head-of-line job that does
  // not fit the free-core budget before the queue insists on draining it.
  static constexpr std::uint32_t kMaxHeadBypass = 8;

  explicit AdmissionQueue(std::size_t capacity);

  // Settles every still-queued job (kShedCapacity) before the promises are
  // torn down: a queue destroyed mid-flight must never leave a caller with a
  // broken_promise future.
  ~AdmissionQueue();

  enum class Admit : std::uint8_t {
    kAccepted,
    kAcceptedEvicted,  // accepted; a lower-priority job was displaced
    kRejected,         // full and nothing lower-priority to displace
    kShedOverload,     // low-priority push shed on the SLO overload advisory
    kClosed,           // queue closed (service stopping)
  };

  // Advisory overload signal (the SLO watchdog's overloaded()).  Consulted
  // under the queue lock on every LOW-priority push, so it must be cheap
  // and lock-free and must never call back into this queue.  When it
  // returns true the push is shed immediately (kShedCapacity verdict on the
  // promise) instead of aging out in a lane that will not drain in budget.
  using OverloadAdvisor = std::function<bool()>;
  void set_overload_advisor(OverloadAdvisor advisor);

  // Called (outside no locks the observer can see) for every job this queue
  // settles itself — sheds, rejections, evictions — so the service's SLO
  // watchdog sees the requests that never reach an executor.  Same
  // constraints as the advisor: cheap, no calls back into the queue.
  using SettleObserver = std::function<void(Priority, SolveStatus)>;
  void set_settle_observer(SettleObserver observer);

  // Always consumes `job`: on kRejected / kClosed its promise is fulfilled
  // (kShedCapacity) before returning, so the caller only keeps the future.
  Admit push(QueuedJob&& job);

  // Non-blocking: shed expired jobs, then hand out the best dispatchable job
  // whose gang fits `free_cores`.  `now_ns` is obs::now_ns() at the call.
  bool pop_best(unsigned free_cores, std::int64_t now_ns, QueuedJob* out);

  // Park until a push/poke/close arrives or `timeout_ns` elapses.
  void wait_for_work(std::int64_t timeout_ns);

  // Wake all waiters (e.g. cores were just freed, so a parked scheduler
  // should rescan).
  void poke();

  // Stop admitting; subsequent pushes return kClosed.  Queued jobs remain
  // poppable so a draining shutdown can finish them.
  void close();
  bool closed() const;

  // Fulfil every queued job's promise with `status` and empty the queue
  // (non-draining shutdown).  Returns how many were flushed.
  std::size_t shed_all(SolveStatus status, const std::string& why);

  std::size_t depth() const;
  std::size_t lane_depth(Priority p) const;
  QueueCounters counters() const;

 private:
  std::size_t depth_locked() const;
  // Settles the promise, records/retains the job's trace when it carries
  // one (a shed is always an anomaly worth a post-mortem), and notifies the
  // settle observer.
  void settle(QueuedJob&& job, SolveStatus status, const std::string& why);

  const std::size_t capacity_;
  // Tracked for the lock-order analyzer (docs/static_analysis.md); _any cv
  // because TrackedMutex is Lockable but not std::mutex.
  mutable TrackedMutex mutex_{"serve.queue"};
  std::condition_variable_any cv_;
  std::deque<QueuedJob> lanes_[kPriorityLanes];
  QueueCounters counters_;
  OverloadAdvisor overload_advisor_;
  SettleObserver settle_observer_;
  std::uint32_t head_bypass_ = 0;
  bool closed_ = false;
};

}  // namespace sacpp::serve
