#pragma once
// Length-prefixed binary framing for SolveRequest / SolveResult.
//
// Frame layout (all integers little-endian regardless of host):
//
//   u32 length     — byte count of everything AFTER this field
//   u32 magic      — kRequestMagic ("SRQ1") or kResultMagic ("SRS1")
//   u8  version    — kWireVersion; bumped on any layout change
//   ... fixed payload fields (see wire.cpp)
//
// The same frames travel over a byte stream (examples/mg_server.cpp speaks
// them over TCP) or over msg::World, whose payloads are doubles: to_doubles /
// from_doubles pack the byte frame into a double vector with an explicit
// byte count, so no byte is invented or lost in the round trip.
//
// Decoding is defensive: decode_* never throws and never reads past the
// span it was given; a malformed frame yields `false` plus a diagnostic so
// a server can reject one bad client message without dying.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sacpp/serve/job.hpp"

namespace sacpp::msg {
class Comm;
}  // namespace sacpp::msg

namespace sacpp::serve {

inline constexpr std::uint32_t kRequestMagic = 0x31515253;  // "SRQ1"
inline constexpr std::uint32_t kResultMagic = 0x31535253;   // "SRS1"
// v2: request carries backend; v3: trace context (trace_id, parent span,
// sampling flags) appended to requests, trace_id echoed on results.  Trace
// fields sit at the END of the payload so every pre-v3 field keeps its byte
// offset; decoders accept kMinWireVersion..kWireVersion and default the
// trace fields to zero for v2 peers.
inline constexpr std::uint8_t kWireVersion = 3;
inline constexpr std::uint8_t kMinWireVersion = 2;

// Largest frame either side will accept; a length prefix beyond this is
// treated as corruption rather than honoured with a giant allocation.
inline constexpr std::size_t kMaxFrameBytes = 4096;

std::vector<std::uint8_t> encode_request(const SolveRequest& req);
std::vector<std::uint8_t> encode_result(const SolveResult& res);

// Bytes the complete frame starting at data[0] occupies (length prefix
// included), or 0 if `data` does not yet hold the full frame — the caller
// keeps reading.  A length prefix above kMaxFrameBytes is reported through
// decode_* (frame_size still returns the nominal size, clamped).
std::size_t frame_size(std::span<const std::uint8_t> data) noexcept;

// Decode one complete frame (as delimited by frame_size).  On failure the
// output is untouched and `error` (if non-null) gets a diagnostic.
bool decode_request(std::span<const std::uint8_t> frame, SolveRequest* out,
                    std::string* error = nullptr);
bool decode_result(std::span<const std::uint8_t> frame, SolveResult* out,
                   std::string* error = nullptr);

// msg::World transport: byte frames packed into double payloads.
// Layout: doubles[0] = exact byte count, doubles[1..] = frame bytes memcpy'd
// 8 per double (zero-padded tail).
std::vector<double> frame_to_doubles(std::span<const std::uint8_t> frame);
std::vector<std::uint8_t> frame_from_doubles(std::span<const double> packed);

// Convenience: ship one frame over a Comm as two messages on `tag` — a
// one-double header carrying the packed length, then the packed payload
// (msg recv needs the exact size up front, hence the header).
void send_frame(msg::Comm& comm, int dest, int tag,
                std::span<const std::uint8_t> frame);
std::vector<std::uint8_t> recv_frame(msg::Comm& comm, int source, int tag);

}  // namespace sacpp::serve
