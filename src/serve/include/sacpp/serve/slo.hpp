#pragma once
// SLO watchdog: rolling burn-rate accounting over the serving stack, exported
// through the Prometheus collector and fed back to the AdmissionQueue as an
// advisory overload signal.
//
// The watchdog keeps a two-epoch rolling window (each epoch is half of
// SloConfig::window_ns): per-priority end-to-end latency histograms plus
// submitted/shed counts rotate through (current, previous) pairs, so every
// reading covers between one and two half-windows of traffic — cheap,
// allocation-free, and immune to unbounded growth.  From the window it
// derives:
//
//   * burn rate per lane  — windowed p99 / the lane's p99 budget (> 1 means
//     the error budget is burning faster than the SLO allows);
//   * shed ratio          — sheds / submissions in the window;
//   * queue saturation    — last observed depth / capacity.
//
// overloaded() is a single relaxed atomic load (recomputed on every
// observation), so the AdmissionQueue can consult it on the push path
// without adding a lock: when the watchdog says overloaded, the queue sheds
// incoming LOW-priority work immediately instead of letting it age out in a
// lane that will never drain in budget (graceful-overload feedback, the
// ROADMAP's "production-harden the serving edge" direction).

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "sacpp/common/lockorder.hpp"
#include "sacpp/obs/export.hpp"
#include "sacpp/obs/histogram.hpp"
#include "sacpp/serve/job.hpp"

namespace sacpp::serve {

struct SloConfig {
  // Per-lane p99 end-to-end budgets in ns; 0 disables that lane's burn gate.
  std::int64_t p99_budget_ns[kPriorityLanes] = {0, 0, 0};
  double max_shed_ratio = 0.10;       // window shed fraction before overload
  double max_queue_saturation = 0.90; // depth/capacity before overload
  std::int64_t window_ns = 10'000'000'000;  // full window (two epochs)

  bool any_budget() const noexcept {
    for (std::int64_t b : p99_budget_ns) {
      if (b > 0) return true;
    }
    return false;
  }
};

class SloWatchdog {
 public:
  explicit SloWatchdog(const SloConfig& cfg) : cfg_(cfg) {}

  // One finished (or shed) request.  `e2e_ns` < 0 means no latency sample
  // (sheds settle without executing).  Thread-safe.
  void observe(Priority lane, SolveStatus status, std::int64_t e2e_ns);

  // Latest queue occupancy (sampled on the dispatch path).
  void observe_queue(std::size_t depth, std::size_t capacity);

  // Advisory overload signal: lock-free, recomputed after every observation.
  bool overloaded() const noexcept {
    return overloaded_.load(std::memory_order_relaxed);
  }

  // Windowed p99 (ns) and burn rate (p99 / budget; 0 when the lane has no
  // budget or no samples).
  std::int64_t window_p99_ns(Priority lane) const;
  double burn_rate(Priority lane) const;
  double shed_ratio() const;

  void collect(obs::MetricSink& sink) const;

  // Force an epoch rotation regardless of elapsed time (tests).
  void rotate_now();

  const SloConfig& config() const noexcept { return cfg_; }

 private:
  struct LaneWindow {
    obs::LogHistogram epochs[2];  // current = epoch_index, previous = other
  };

  void maybe_rotate_locked(std::int64_t now);
  void recompute_locked();
  std::int64_t p99_locked(int lane) const;

  SloConfig cfg_;
  mutable TrackedMutex mutex_{"serve.slo"};
  LaneWindow lanes_[kPriorityLanes];
  std::uint64_t submitted_[2] = {0, 0};
  std::uint64_t shed_[2] = {0, 0};
  int epoch_ = 0;
  std::int64_t epoch_start_ns_ = -1;  // primed on first observation
  std::size_t queue_depth_ = 0;
  std::size_t queue_capacity_ = 1;
  std::atomic<bool> overloaded_{false};
};

}  // namespace sacpp::serve
