#pragma once
// sacpp_serve job model: what a solve request and its outcome look like.
//
// The serving subsystem (docs/serve.md) turns the single-shot MG stack into
// a multi-tenant engine: callers describe a solve declaratively
// (class, variant, iteration count, deadline, priority, thread gang) and
// receive a SolveResult asynchronously.  Requests are plain value types so
// they can cross any transport — the in-process submit() path, the
// length-prefixed wire framing (wire.hpp) over a socket, or the msg::World
// SPMD substrate — without translation.

#include <cstdint>
#include <string>

#include "sacpp/mg/driver.hpp"
#include "sacpp/mg/spec.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::serve {

// Scheduling priority lanes, highest first.  The admission queue keeps one
// FIFO lane per priority; under overload, low lanes are evicted first.
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr int kPriorityLanes = 3;

const char* priority_name(Priority p) noexcept;

// One solve to perform.  All fields are caller-settable knobs; everything a
// job needs from the runtime (pool, stencil engine, MT) is captured into a
// per-job SacConfig snapshot at dispatch, so two in-flight requests with
// different knobs cannot bleed into each other.
struct SolveRequest {
  std::uint64_t id = 0;     // caller correlation id (echoed in the result)
  mg::MgClass cls = mg::MgClass::S;
  mg::Variant variant = mg::Variant::kSacDirect;
  std::uint32_t nit = 0;    // benchmark iterations; 0 = class default
  Priority priority = Priority::kNormal;
  sac::StencilMode stencil_mode = sac::StencilMode::kGrouped;
  sac::BackendKind backend = sac::BackendKind::kScalar;  // row-primitive engine
  std::uint32_t gang = 0;   // worker threads wanted; 0 = scheduler policy
  std::int64_t deadline_ns = 0;  // latency budget from submit; 0 = none
  bool record_norms = false;     // per-iteration norms (costs a resid pass)
  // Request trace context (obs/trace.hpp; wire v3).  trace_id 0 = untraced.
  std::uint64_t trace_id = 0;
  std::uint64_t trace_parent = 0;  // client-side root span id
  std::uint8_t trace_flags = 0;    // obs::kTraceSampled / kTraceForced
};

// How a request ended.
enum class SolveStatus : std::uint8_t {
  kOk = 0,         // solved; verification passed or class has no reference
  kWrongAnswer,    // solved but the recorded class norm did not match
  kShedDeadline,   // dropped before dispatch: deadline expired in the queue
  kShedCapacity,   // dropped: queue full / evicted by priority / stopped
  kDeadlineMiss,   // solved, but completed after its deadline
  kError,          // the solver threw (diagnostic in `error`)
};

const char* solve_status_name(SolveStatus s) noexcept;

// True for the statuses that carry a finished solve (kOk / kWrongAnswer /
// kDeadlineMiss): final_norm and seconds are meaningful.
bool solve_completed(SolveStatus s) noexcept;

struct SolveResult {
  std::uint64_t id = 0;
  SolveStatus status = SolveStatus::kError;
  double final_norm = 0.0;   // rnm2 after the last iteration
  double seconds = 0.0;      // solver wall time (timed section only)
  std::int64_t queue_ns = 0; // admission -> dispatch
  std::int64_t e2e_ns = 0;   // submit -> completion
  std::uint32_t gang = 0;    // worker threads actually granted
  bool verified = false;     // matched the recorded class norm
  std::string error;         // kError diagnostic (empty otherwise)
  std::uint64_t trace_id = 0;  // echoed request trace id (wire v3)
};

}  // namespace sacpp::serve
