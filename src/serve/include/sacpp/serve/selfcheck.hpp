#pragma once
// Protocol & concurrency self-verification of the serving stack
// (docs/static_analysis.md).
//
// Three CI-failable passes, selected by the `--check=<pass>` flag of npb_mg
// and `mg_server --selftest`:
//
//   protocol  — drives the SRQ1/SRS1 wire protocol over a two-rank
//               msg::World with SessionMonitors bound on both endpoints;
//               every send_frame/recv_frame is validated against the session
//               specs below, covering every response branch so finish()
//               proves no dead transitions either.
//   locks     — runs class-S serve traffic (solves, gang pools, msg frames)
//               inside a check::LockOrderSession and fails on any cycle in
//               the recorded lock-acquisition graph.
//   schedule  — the PCT explorer (check/schedule.hpp) drives AdmissionQueue
//               against an exact model mirror through thousands of seeded
//               interleavings, then a handful of full SolverService
//               lifecycles; invariants: every promise settles exactly once,
//               eviction preserves priority ordering, head-of-line bypass
//               stays within kMaxHeadBypass, drain-on-stop leaves nothing
//               unsettled.  A failure prints its seed; replay via
//               SelfCheckOptions::schedule_seed.

#include <cstdint>
#include <string>

#include "sacpp/check/diagnostics.hpp"
#include "sacpp/check/session.hpp"

namespace sacpp::serve {

enum class CheckPass : std::uint8_t { kProtocol, kLocks, kSchedule, kAll };

// Maps a --check selector value ("protocol" / "locks" / "schedule" / "all")
// to a pass; false (out untouched) for anything else, so drivers can keep
// their historical bare-`--check` meaning for other values.
bool parse_check_pass(const std::string& value, CheckPass* out);

const char* check_pass_name(CheckPass pass) noexcept;

// Session specs of the serve wire protocol, one per endpoint: a client
// sends an SRQ1 request then receives exactly one SRS1 response whose
// status byte selects the branch (ok / wrong-answer / shed-deadline /
// shed-capacity / deadline-miss / error), looping for the next request; the
// server is the dual.  Both accept only between exchanges.
check::SessionSpec client_session_spec();
check::SessionSpec server_session_spec();

struct SelfCheckOptions {
  // Queue-battery interleavings explored by the schedule pass.
  std::uint64_t schedules = 1000;
  // Nonzero: replay exactly this seed (regression mode) instead of
  // exploring.
  std::uint64_t schedule_seed = 0;
  // Full SolverService submit/drain/stop lifecycles in the schedule pass.
  std::uint64_t service_lifecycles = 4;
  // Non-empty: Graphviz dump of the recorded lock graph (locks pass).
  std::string lock_graph_path;
};

// Each pass reports findings into `engine` and returns true when it ran
// clean (no errors; session warnings such as dead branches also fail the
// protocol pass, which promises full coverage).
bool run_protocol_check(check::DiagnosticEngine* engine);
bool run_lock_check(const SelfCheckOptions& opts,
                    check::DiagnosticEngine* engine);
bool run_schedule_check(const SelfCheckOptions& opts,
                        check::DiagnosticEngine* engine);

// Dispatch on `pass` (kAll = all three, continuing past failures so the
// report is complete).  True iff every selected pass was clean.
bool run_self_checks(CheckPass pass, const SelfCheckOptions& opts,
                     check::DiagnosticEngine* engine);

}  // namespace sacpp::serve
