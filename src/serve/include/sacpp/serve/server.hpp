#pragma once
// SolverService: an in-process MG solve server.
//
// Architecture (docs/serve.md):
//
//   submit() ──► AdmissionQueue (priority lanes, bounded, deadline shed)
//                     │ pop_best under the dispatch lock
//   executor team ◄───┘   E executor threads share a core budget C.
//
// Each executor claims a job together with its gang grant (atomically with
// the core-budget deduction, so concurrent executors can never oversubscribe
// C), then runs the solve on its own thread under a per-job SacConfig
// snapshot (sac::ConfigBinding) and — for gangs > 1 — a private ThreadPool
// bound via sac::RuntimeBinding.  Small jobs therefore batch onto shared
// single-core executors while large jobs get gang-scheduled cores, and two
// concurrent solves with different knobs (stencil engine, folding, MT) are
// fully isolated from each other and from the process-global config().
//
// Observability: every request gets queue/exec/e2e durations fed into the
// obs histograms (Hist::kServeQueueNs/kServeJobNs/kServeE2eNs) plus
// service-local histograms per priority for the snapshot() quantiles; spans
// kPhase("serve_job") mark executions in trace exports; a process collector
// exposes uptime, RSS, active jobs, queue depth, core usage and all
// admission counters through obs::write_prometheus.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sacpp/obs/histogram.hpp"
#include "sacpp/obs/sampler.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/serve/job.hpp"
#include "sacpp/serve/queue.hpp"
#include "sacpp/serve/slo.hpp"

namespace sacpp::sac {
class ThreadPool;
}  // namespace sacpp::sac

namespace sacpp::obs {
class MetricSink;
}  // namespace sacpp::obs

namespace sacpp::serve {

struct ServeConfig {
  // Core budget shared by all concurrent jobs; 0 = hardware concurrency.
  unsigned total_cores = 0;
  // Executor threads (max concurrent jobs); 0 = total_cores.
  unsigned executors = 0;
  std::size_t queue_capacity = 64;
  // Gang policy: per-request `gang` wins (clamped to max_gang); otherwise
  // classes S/W get gang_small and A/B/C get gang_large.  0 entries fall
  // back to 1 and half the budget respectively.
  unsigned max_gang = 0;  // 0 = total_cores
  unsigned gang_small = 1;
  unsigned gang_large = 0;
  // Applied when a request carries no deadline; 0 = unbounded.
  std::int64_t default_deadline_ns = 0;
  // Housekeeping cadence: pool epoch-trim between jobs so a burst's arena
  // pages drain back after the burst passes.  0 disables.
  std::int64_t trim_interval_ns = 250'000'000;
  // NPB warm-up iteration per job (off: serving measures end-to-end time,
  // not the benchmark protocol).
  bool warmup = false;
  // Request tracing (obs/trace.hpp).  > 0 mints a TraceContext for every
  // untraced submit; the value is the head-sampling rate (0..1) fed to the
  // tail sampler — anomalies (sheds, errors, deadline misses, slow tail)
  // are retained regardless of it.  0 disables minting; requests that
  // arrive already traced (wire v3) are still honoured.
  double trace_sample = 0.0;
  // SLO budgets driving the watchdog and the queue's overload advisory.
  SloConfig slo;
  // Flight-recorder dump path; non-empty configures the recorder and
  // installs the crash handlers on service start.
  std::string flight_path;
  // Template for per-job config snapshots.  MT fields are overridden per
  // job from the gang grant; stencil_mode from the request.
  sac::SacConfig base;

  ServeConfig();  // base starts from the process config()
};

// Approximate latency summary derived from log-bucketed histograms: each
// quantile is the geometric midpoint of the bucket where the cumulative
// count crosses it, so values are within 2x of truth — fine for p50/p95/p99
// dashboards, not for microsecond comparisons.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

LatencySummary summarize_histogram(const obs::LogHistogram& hist);
double histogram_quantile_ns(const obs::LogHistogram& hist, double q);

struct ServeCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t wrong_answer = 0;
  std::uint64_t errors = 0;
  std::uint64_t deadline_miss = 0;  // solved but late
  QueueCounters queue;              // accepted/rejected/evicted/shed
};

struct ServerSnapshot {
  ServeCounters counters;
  std::size_t queue_depth = 0;
  unsigned active_jobs = 0;
  unsigned cores_in_use = 0;
  unsigned total_cores = 0;
  double uptime_seconds = 0.0;
  LatencySummary queue_wait;               // admission -> dispatch
  LatencySummary exec;                     // dispatch -> completion
  LatencySummary e2e[kPriorityLanes];      // submit -> completion, per lane
};

class SolverService {
 public:
  explicit SolverService(const ServeConfig& cfg = ServeConfig());
  ~SolverService();  // stop()s if still running

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  // Thread-safe.  The future always resolves: with a solve, or with a shed /
  // rejected / error status.
  std::future<SolveResult> submit(SolveRequest req);

  // Block until no queued and no running jobs remain.
  void drain();

  // drain() with a budget.  On timeout returns false after forcing a
  // flight-recorder dump ("drain-timeout") — the black-box record of what
  // the queue, executors, and lock graph looked like while stuck.
  bool drain_for(std::int64_t timeout_ns);

  // Stop admitting, shed everything still queued (kShedCapacity), finish
  // running jobs, join all threads.  Idempotent.
  void stop();

  ServerSnapshot snapshot() const;
  std::size_t queue_depth() const { return queue_.depth(); }
  unsigned active_jobs() const {
    return active_jobs_.load(std::memory_order_relaxed);
  }

  const ServeConfig& config() const noexcept { return cfg_; }

  // The SLO watchdog backing the queue's overload advisory (burn rates,
  // shed ratio, overloaded flag).
  const SloWatchdog& watchdog() const noexcept { return watchdog_; }

  // Resident set size of this process in bytes (/proc/self/statm); -1 where
  // unavailable.  Exported as the sacpp_serve_rss_bytes gauge.
  static long long rss_bytes();

 private:
  void executor_loop(unsigned slot);
  void housekeeping_loop();
  void run_job(QueuedJob job);
  unsigned resolve_gang(const SolveRequest& req) const;
  std::unique_ptr<sac::ThreadPool> acquire_pool(unsigned gang);
  void release_pool(std::unique_ptr<sac::ThreadPool> pool);
  void collect(obs::MetricSink& sink) const;

  ServeConfig cfg_;
  AdmissionQueue queue_;

  // Dispatch lock: serialises pop_best with the core-budget deduction.
  // All service locks are TrackedMutex so the lock-order analyzer
  // (docs/static_analysis.md) sees their nesting.
  TrackedMutex dispatch_mutex_{"serve.dispatch"};
  unsigned cores_free_ = 0;

  std::atomic<unsigned> active_jobs_{0};
  std::atomic<unsigned> cores_in_use_{0};
  std::atomic<bool> stopping_{false};
  TrackedMutex stop_mutex_{"serve.stop"};
  bool stopped_ = false;

  // Completion signal for drain().
  mutable TrackedMutex done_mutex_{"serve.done"};
  std::condition_variable_any done_cv_;

  // Idle gang pools, reused across jobs of the same width (bounded cache).
  TrackedMutex pools_mutex_{"serve.pools"};
  std::vector<std::unique_ptr<sac::ThreadPool>> idle_pools_;

  // Service-local latency histograms backing snapshot().
  obs::LogHistogram queue_wait_hist_;
  obs::LogHistogram exec_hist_;
  obs::LogHistogram e2e_hist_[kPriorityLanes];

  // Tail-based trace retention and SLO burn-rate accounting.
  obs::TailSampler sampler_;
  SloWatchdog watchdog_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_ok_{0};
  std::atomic<std::uint64_t> wrong_answer_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> deadline_miss_{0};

  std::int64_t start_ns_ = 0;

  std::vector<std::thread> executors_;
  std::thread housekeeper_;
  std::condition_variable_any housekeeping_cv_;
  TrackedMutex housekeeping_mutex_{"serve.housekeeping"};
};

}  // namespace sacpp::serve
