#pragma once
// Coefficient-class stencil relaxation (the paper's RelaxKernel).
//
// Every NAS-MG grid operation is a 3^rank-point stencil whose coefficient
// depends only on the neighbour's distance class — the number of non-zero
// components of its offset vector (centre / face / edge / corner for
// rank 3).  A coefficient vector c[0..3] therefore fully describes the four
// stencils A, P, Q and S of the benchmark.
//
// Three evaluation modes reproduce the paper's performance discussion
// (StencilMode lives in config.hpp; docs/stencil.md):
//  * kGrouped — sum the neighbours of each class first, then apply one
//    multiplication per class (4 mults / 26 adds for rank 3).  sac2c reaches
//    this form implicitly; it is our default.
//  * kNaive — one multiply-add per stencil point (27 mults / 26 adds),
//    what a direct translation of the mathematics would do.  Kept for the
//    abl_stencil ablation.
//  * kPlanes — the NPB Fortran hand optimisation (mg.f resid/psinv): for
//    each output row (i, j) the four class-1 row sums u1[k] and the four
//    class-2 diagonal row sums u2[k] are computed once into scratch, then
//    every output point reuses three of each (4 mults / ~16 adds per point,
//    contiguous auto-vectorisable loops).  Executed through the with-loop
//    row-fill path (detail::RowFillBody); grids below
//    SacConfig::stencil_planes_cutover fall back to kGrouped per-point
//    evaluation, where the scratch setup would dominate.
//
// StencilExpr is the lazy form (expr.hpp): stencil value on interior
// points, 0 on the boundary ring, exactly the result RelaxKernel
// materialises.  It fuses with surrounding expressions (with-loop folding).

#include <algorithm>
#include <array>
#include <cstdlib>
#include <utility>
#include <vector>

#include "sacpp/common/error.hpp"
#include "sacpp/common/shape.hpp"
#include "sacpp/sac/array.hpp"
#include "sacpp/sac/backend.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/pool.hpp"
#include "sacpp/sac/stats.hpp"
#include "sacpp/sac/with_loop.hpp"

namespace sacpp::sac {

// One coefficient per neighbour distance class.  Rank <= 3 uses classes
// 0..rank; higher classes are ignored for lower ranks.
struct StencilCoeffs {
  std::array<double, 4> c{};
  double operator[](std::size_t cls) const { return c[cls]; }
};

// Per-chunk scratch of the kPlanes row path: one block holding the u1
// (class-1) and u2 (class-2) partial-sum rows, plus the tally flushed into
// stats().stencil_rows_reused on destruction (once per chunk, so the hot
// loop never touches the shared counter).  Deliberately NOT a Buffer<T>:
// chunk states live and die on worker threads, and Buffer ownership is
// coordinator-only by contract (buffer.hpp) — BufferPool itself is
// thread-safe through its per-thread magazines, which is exactly what keeps
// bottom-of-V-cycle levels from re-allocating scratch (docs/memory.md).
class PlaneScratch {
 public:
  explicit PlaneScratch(extent_t row_len) {
    bytes_ = pool_block_bytes(2 * static_cast<std::size_t>(row_len) *
                              sizeof(double));
    pooled_ = active_config().pool;
    void* raw = pooled_ ? BufferPool::instance().allocate(bytes_)
                        : std::aligned_alloc(kBufferAlignment, bytes_);
    SACPP_REQUIRE(raw != nullptr, "stencil plane scratch allocation failed");
    u1_ = static_cast<double*>(raw);
    u2_ = u1_ + row_len;
  }
  PlaneScratch(PlaneScratch&& o) noexcept
      : rows(std::exchange(o.rows, 0)),
        u1_(std::exchange(o.u1_, nullptr)),
        u2_(std::exchange(o.u2_, nullptr)),
        bytes_(o.bytes_),
        pooled_(o.pooled_) {}
  PlaneScratch(const PlaneScratch&) = delete;
  PlaneScratch& operator=(const PlaneScratch&) = delete;
  PlaneScratch& operator=(PlaneScratch&&) = delete;
  ~PlaneScratch() {
    if (u1_ != nullptr) {
      if (pooled_) {
        BufferPool::instance().deallocate(u1_, bytes_);
      } else {
        std::free(u1_);
      }
    }
    if (rows != 0) stats().stencil_rows_reused += rows;
  }

  double* u1() noexcept { return u1_; }
  double* u2() noexcept { return u2_; }
  const double* u1() const noexcept { return u1_; }
  const double* u2() const noexcept { return u2_; }

  std::uint64_t rows = 0;  // output rows filled with this scratch

 private:
  double* u1_ = nullptr;
  double* u2_ = nullptr;
  std::size_t bytes_ = 0;
  bool pooled_ = false;
};

// All offsets in {-1, 0, 1}^rank with their distance class; cached per rank.
class StencilTable {
 public:
  struct Entry {
    IndexVec offset;
    int cls;
  };

  static const StencilTable& for_rank(std::size_t rank);

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  explicit StencilTable(std::size_t rank);
  std::vector<Entry> entries_;
};

// Lazy stencil application over a concrete array: interior points evaluate
// the weighted neighbour sum, boundary points are 0.
class StencilExpr {
 public:
  StencilExpr(Array<double> a, const StencilCoeffs& coeffs,
              StencilMode mode = active_config().stencil_mode)
      : a_(std::move(a)), c_(coeffs), mode_(mode), be_(&active_backend()) {
    const Shape& shp = a_.shape();
    SACPP_REQUIRE(shp.rank() >= 1, "stencil needs rank >= 1");
    extent_t min_extent = shp.extent(0);
    for (std::size_t d = 0; d < shp.rank(); ++d) {
      SACPP_REQUIRE(shp.extent(d) >= 3,
                    "stencil needs extent >= 3 in every dimension");
      min_extent = std::min(min_extent, shp.extent(d));
    }
    const IndexVec strides = shp.strides();
    for (const auto& e : StencilTable::for_rank(shp.rank()).entries()) {
      extent_t lin = 0;
      for (std::size_t d = 0; d < strides.size(); ++d) {
        lin += e.offset[d] * strides[d];
      }
      by_class_[static_cast<std::size_t>(e.cls)].push_back(lin);
    }
    if (shp.rank() == 3) {
      s0_ = strides[0];
      s1_ = strides[1];
      // Small-grid cutover: below it the scratch setup costs more than the
      // shared additions save, so kPlanes degrades to kGrouped per point.
      planes_rows_ = mode_ == StencilMode::kPlanes &&
                     min_extent >= active_config().stencil_planes_cutover;
    }
  }

  const Shape& shape() const { return a_.shape(); }
  const Array<double>& argument() const { return a_; }
  StencilMode mode() const { return mode_; }

  bool is_interior(const IndexVec& iv) const {
    const Shape& shp = a_.shape();
    for (std::size_t d = 0; d < iv.size(); ++d) {
      if (iv[d] < 1 || iv[d] >= shp.extent(d) - 1) return false;
    }
    return true;
  }

  double operator()(const IndexVec& iv) const {
    if (!is_interior(iv)) return 0.0;
    // Rank 3 delegates to the same evaluator as the unpacked access so that
    // specialised and generic execution paths produce bitwise-equal values.
    // kPlanes evaluated per point (below the cutover, or through a fused
    // expression with no row path) uses the grouped association tree.
    if (mode_ != StencilMode::kNaive && iv.size() == 3) {
      return at_linear3(a_.shape().linearize(iv));
    }
    return at_linear(a_.shape().linearize(iv));
  }

  double operator()(extent_t i, extent_t j, extent_t k) const {
    SACPP_ASSERT(a_.rank() == 3, "rank-3 stencil access on non-rank-3 array");
    const Shape& shp = a_.shape();
    if (i < 1 || i >= shp[0] - 1 || j < 1 || j >= shp[1] - 1 || k < 1 ||
        k >= shp[2] - 1)
      return 0.0;
    if (mode_ != StencilMode::kNaive) {
      return at_linear3((i * shp[1] + j) * shp[2] + k);
    }
    return at_linear((i * shp[1] + j) * shp[2] + k);
  }

  // -- kPlanes row-fill protocol (detail::RowFillBody) ------------------------
  //
  // fill_row writes the whole output row (i, j) in one pass: the u1/u2
  // partial sums are computed once over the full row length, then every
  // output point combines three entries of each.  The u1 association tree
  // matches the grouped faces sum left-to-right, but the per-point combine
  // reassociates the class-2/3 sums — kPlanes results are therefore equal to
  // kGrouped only up to rounding (tests use 1e-12 relative), while staying
  // bit-identical across thread counts (rows are computed independently).

  bool row_fill_enabled() const { return planes_rows_; }

  PlaneScratch make_row_state() const {
    return PlaneScratch(a_.shape().extent(2));
  }

  // Assign-form row fill: boundary rows and boundary k positions get the
  // fixed-boundary 0, interior points the plane-sum combination.
  void fill_row(PlaneScratch& st, extent_t i, extent_t j, double* out,
                extent_t k_lo, extent_t k_hi) const {
    const Shape& shp = a_.shape();
    if (i < 1 || i >= shp[0] - 1 || j < 1 || j >= shp[1] - 1) {
      be_->fill_row(out, k_lo, k_hi, 0.0);
      return;
    }
    const extent_t n2 = shp[2];
    if (k_lo < 1) out[0] = 0.0;
    if (k_hi > n2 - 1) out[n2 - 1] = 0.0;
    fused_row(st, i, j, out, std::max<extent_t>(k_lo, 1),
              std::min<extent_t>(k_hi, n2 - 1), /*accumulate=*/false);
    st.rows += 1;
  }

  // Accumulate-form row fill (out[k] += stencil) for in-place updates like
  // psinv's u += C r; boundary positions add the stencil's 0, i.e. nothing.
  // `out` must not alias the stencil argument (it is the array being
  // updated, the stencil reads another).
  void accumulate_row(PlaneScratch& st, extent_t i, extent_t j, double* out,
                      extent_t k_lo, extent_t k_hi) const {
    const Shape& shp = a_.shape();
    if (i < 1 || i >= shp[0] - 1 || j < 1 || j >= shp[1] - 1) return;
    fused_row(st, i, j, out, std::max<extent_t>(k_lo, 1),
              std::min<extent_t>(k_hi, shp[2] - 1), /*accumulate=*/true);
    st.rows += 1;
  }

  // Unrolled grouped evaluation for rank 3 (the dominant path): nine row
  // pointers with compile-time +-1 offsets, 4 multiplications, 26 additions
  // — the form sac2c's optimiser reaches implicitly (paper Sec. 5).
  double at_linear3(extent_t centre) const {
    const double* c = a_.data() + centre;
    const double* im = c - s0_;
    const double* ip = c + s0_;
    const double* jm = c - s1_;
    const double* jp = c + s1_;
    const double* imm = im - s1_;
    const double* imp = im + s1_;
    const double* ipm = ip - s1_;
    const double* ipp = ip + s1_;
    const double faces = im[0] + ip[0] + jm[0] + jp[0] + c[-1] + c[1];
    const double edges = imm[0] + imp[0] + ipm[0] + ipp[0] + im[-1] + im[1] +
                         ip[-1] + ip[1] + jm[-1] + jm[1] + jp[-1] + jp[1];
    const double corners = imm[-1] + imm[1] + imp[-1] + imp[1] + ipm[-1] +
                           ipm[1] + ipp[-1] + ipp[1];
    return c_[0] * c[0] + c_[1] * faces + c_[2] * edges + c_[3] * corners;
  }

  // Weighted neighbour sum around a (guaranteed interior) linear offset.
  double at_linear(extent_t centre) const {
    const double* p = a_.data() + centre;
    if (mode_ == StencilMode::kGrouped) {
      double acc = 0.0;
      for (std::size_t cls = 0; cls < 4; ++cls) {
        if (by_class_[cls].empty()) continue;
        double s = 0.0;
        for (extent_t off : by_class_[cls]) s += p[off];
        acc += c_[cls] * s;
      }
      return acc;
    }
    double acc = 0.0;
    for (std::size_t cls = 0; cls < 4; ++cls) {
      for (extent_t off : by_class_[cls]) acc += c_[cls] * p[off];
    }
    return acc;
  }

 private:
  // One fused output row (i, j): the NPB u1/u2 plane sums — u1[k] the four
  // class-1 neighbours in the i/j directions, u2[k] the four class-2
  // diagonal rows — feeding the per-point combine, issued as the Backend's
  // single stencil_row primitive so a fusing engine (the JIT) runs both
  // passes in one kernel.  The nine source rows are pairwise disjoint
  // segments of the argument and the scratch is a separate block
  // (docs/backends.md, docs/jit.md).
  void fused_row(PlaneScratch& st, extent_t i, extent_t j, double* out,
                 extent_t k_lo, extent_t k_hi, bool accumulate) const {
    const double* c = a_.data() + i * s0_ + j * s1_;
    const double* im = c - s0_;
    const double* ip = c + s0_;
    const double* jm = c - s1_;
    const double* jp = c + s1_;
    be_->stencil_row(c_.c.data(), c, im, ip, jm, jp, im - s1_, im + s1_,
                     ip - s1_, ip + s1_, st.u1(), st.u2(), out, k_lo, k_hi,
                     a_.shape().extent(2), accumulate);
  }

  Array<double> a_;
  StencilCoeffs c_;
  StencilMode mode_;
  const Backend* be_;  // row-primitive engine, snapshotted at construction
  std::array<std::vector<extent_t>, 4> by_class_;
  extent_t s0_ = 0;  // rank-3 row strides for the unrolled evaluator
  extent_t s1_ = 0;
  bool planes_rows_ = false;  // kPlanes row path active (rank 3, >= cutover)
};

// Eager RelaxKernel: one with-loop over the interior, zero boundary ring —
// the fixed-boundary relaxation step of the paper's Fig. 6/7.  The default
// mode is the process-wide SacConfig::stencil_mode (evaluated per call).
Array<double> relax_kernel(const Array<double>& a, const StencilCoeffs& coeffs,
                           StencilMode mode = active_config().stencil_mode);

}  // namespace sacpp::sac
