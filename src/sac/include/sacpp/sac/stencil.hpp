#pragma once
// Coefficient-class stencil relaxation (the paper's RelaxKernel).
//
// Every NAS-MG grid operation is a 3^rank-point stencil whose coefficient
// depends only on the neighbour's distance class — the number of non-zero
// components of its offset vector (centre / face / edge / corner for
// rank 3).  A coefficient vector c[0..3] therefore fully describes the four
// stencils A, P, Q and S of the benchmark.
//
// Two evaluation modes reproduce the paper's performance discussion:
//  * kGrouped — sum the neighbours of each class first, then apply one
//    multiplication per class (4 mults / 26 adds for rank 3).  sac2c reaches
//    this form implicitly; it is our default.
//  * kNaive — one multiply-add per stencil point (27 mults / 26 adds),
//    what a direct translation of the mathematics would do.  Kept for the
//    abl_stencil ablation.
//
// StencilExpr is the lazy form (expr.hpp): stencil value on interior
// points, 0 on the boundary ring, exactly the result RelaxKernel
// materialises.  It fuses with surrounding expressions (with-loop folding).

#include <array>
#include <vector>

#include "sacpp/common/error.hpp"
#include "sacpp/common/shape.hpp"
#include "sacpp/sac/array.hpp"
#include "sacpp/sac/with_loop.hpp"

namespace sacpp::sac {

// One coefficient per neighbour distance class.  Rank <= 3 uses classes
// 0..rank; higher classes are ignored for lower ranks.
struct StencilCoeffs {
  std::array<double, 4> c{};
  double operator[](std::size_t cls) const { return c[cls]; }
};

enum class StencilMode { kGrouped, kNaive };

// All offsets in {-1, 0, 1}^rank with their distance class; cached per rank.
class StencilTable {
 public:
  struct Entry {
    IndexVec offset;
    int cls;
  };

  static const StencilTable& for_rank(std::size_t rank);

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  explicit StencilTable(std::size_t rank);
  std::vector<Entry> entries_;
};

// Lazy stencil application over a concrete array: interior points evaluate
// the weighted neighbour sum, boundary points are 0.
class StencilExpr {
 public:
  StencilExpr(Array<double> a, const StencilCoeffs& coeffs,
              StencilMode mode = StencilMode::kGrouped)
      : a_(std::move(a)), c_(coeffs), mode_(mode) {
    const Shape& shp = a_.shape();
    SACPP_REQUIRE(shp.rank() >= 1, "stencil needs rank >= 1");
    for (std::size_t d = 0; d < shp.rank(); ++d) {
      SACPP_REQUIRE(shp.extent(d) >= 3,
                    "stencil needs extent >= 3 in every dimension");
    }
    const IndexVec strides = shp.strides();
    for (const auto& e : StencilTable::for_rank(shp.rank()).entries()) {
      extent_t lin = 0;
      for (std::size_t d = 0; d < strides.size(); ++d) {
        lin += e.offset[d] * strides[d];
      }
      by_class_[static_cast<std::size_t>(e.cls)].push_back(lin);
    }
    if (shp.rank() == 3) {
      s0_ = strides[0];
      s1_ = strides[1];
    }
  }

  const Shape& shape() const { return a_.shape(); }
  const Array<double>& argument() const { return a_; }

  bool is_interior(const IndexVec& iv) const {
    const Shape& shp = a_.shape();
    for (std::size_t d = 0; d < iv.size(); ++d) {
      if (iv[d] < 1 || iv[d] >= shp.extent(d) - 1) return false;
    }
    return true;
  }

  double operator()(const IndexVec& iv) const {
    if (!is_interior(iv)) return 0.0;
    // Rank 3 delegates to the same evaluator as the unpacked access so that
    // specialised and generic execution paths produce bitwise-equal values.
    if (mode_ == StencilMode::kGrouped && iv.size() == 3) {
      return at_linear3(a_.shape().linearize(iv));
    }
    return at_linear(a_.shape().linearize(iv));
  }

  double operator()(extent_t i, extent_t j, extent_t k) const {
    SACPP_ASSERT(a_.rank() == 3, "rank-3 stencil access on non-rank-3 array");
    const Shape& shp = a_.shape();
    if (i < 1 || i >= shp[0] - 1 || j < 1 || j >= shp[1] - 1 || k < 1 ||
        k >= shp[2] - 1)
      return 0.0;
    if (mode_ == StencilMode::kGrouped) {
      return at_linear3((i * shp[1] + j) * shp[2] + k);
    }
    return at_linear((i * shp[1] + j) * shp[2] + k);
  }

  // Unrolled grouped evaluation for rank 3 (the dominant path): nine row
  // pointers with compile-time +-1 offsets, 4 multiplications, 26 additions
  // — the form sac2c's optimiser reaches implicitly (paper Sec. 5).
  double at_linear3(extent_t centre) const {
    const double* c = a_.data() + centre;
    const double* im = c - s0_;
    const double* ip = c + s0_;
    const double* jm = c - s1_;
    const double* jp = c + s1_;
    const double* imm = im - s1_;
    const double* imp = im + s1_;
    const double* ipm = ip - s1_;
    const double* ipp = ip + s1_;
    const double faces = im[0] + ip[0] + jm[0] + jp[0] + c[-1] + c[1];
    const double edges = imm[0] + imp[0] + ipm[0] + ipp[0] + im[-1] + im[1] +
                         ip[-1] + ip[1] + jm[-1] + jm[1] + jp[-1] + jp[1];
    const double corners = imm[-1] + imm[1] + imp[-1] + imp[1] + ipm[-1] +
                           ipm[1] + ipp[-1] + ipp[1];
    return c_[0] * c[0] + c_[1] * faces + c_[2] * edges + c_[3] * corners;
  }

  // Weighted neighbour sum around a (guaranteed interior) linear offset.
  double at_linear(extent_t centre) const {
    const double* p = a_.data() + centre;
    if (mode_ == StencilMode::kGrouped) {
      double acc = 0.0;
      for (std::size_t cls = 0; cls < 4; ++cls) {
        if (by_class_[cls].empty()) continue;
        double s = 0.0;
        for (extent_t off : by_class_[cls]) s += p[off];
        acc += c_[cls] * s;
      }
      return acc;
    }
    double acc = 0.0;
    for (std::size_t cls = 0; cls < 4; ++cls) {
      for (extent_t off : by_class_[cls]) acc += c_[cls] * p[off];
    }
    return acc;
  }

 private:
  Array<double> a_;
  StencilCoeffs c_;
  StencilMode mode_;
  std::array<std::vector<extent_t>, 4> by_class_;
  extent_t s0_ = 0;  // rank-3 row strides for the unrolled evaluator
  extent_t s1_ = 0;
};

// Eager RelaxKernel: one with-loop over the interior, zero boundary ring —
// the fixed-boundary relaxation step of the paper's Fig. 6/7.
Array<double> relax_kernel(const Array<double>& a, const StencilCoeffs& coeffs,
                           StencilMode mode = StencilMode::kGrouped);

}  // namespace sacpp::sac
