#pragma once
// The implicit multithreading runtime (SAC's MT backend).
//
// A persistent pool of worker threads executes with-loop index ranges.  The
// coordinating thread partitions the outermost loop dimension into one chunk
// per worker, wakes the pool, participates in the work itself, and waits on
// a completion latch (fork/join, exactly SAC's execution model: one parallel
// region per multithreaded with-loop).
//
// Workers never touch array ownership — they only run loop bodies over
// disjoint element ranges — so the rest of the system needs no locking.

#include <cstdint>
#include <functional>

#include "sacpp/common/shape.hpp"

namespace sacpp::sac {

class ThreadPool {
 public:
  // Spawns `threads` workers (>= 1).  The coordinating thread also works, so
  // `threads == 1` means purely sequential execution without a pool.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const noexcept { return threads_; }

  // Run fn(chunk_begin, chunk_end, worker_id) over [begin, end) split into
  // `thread_count()` contiguous chunks whose starts are aligned down to
  // `align` (so strided generators keep their phase).  Blocks until all
  // chunks completed.  fn must be safe to call concurrently on disjoint
  // ranges.
  void parallel_for(extent_t begin, extent_t end, extent_t align,
                    const std::function<void(extent_t, extent_t, unsigned)>& fn);

 private:
  struct Impl;
  Impl* impl_;
  unsigned threads_;
};

// The runtime serving the calling thread: the thread's bound per-job pool
// when one is installed (RuntimeBinding), else the process-global pool,
// created on first use with the configured thread count
// (SacConfig::mt_threads; 0 = hardware concurrency) and re-created when the
// requested count changes.  The global pool is intended for one coordinator
// at a time; concurrent solves each bind their own pool (docs/serve.md).
ThreadPool& runtime();

// Tear down the global runtime (tests use this to exercise re-creation).
// Does not touch bound per-job pools.
void shutdown_runtime();

namespace runtime_detail {
extern thread_local ThreadPool* tl_pool;
}  // namespace runtime_detail

// RAII: route the calling thread's with-loops through a private ThreadPool
// instead of the process-global one.  The serve scheduler gives each
// gang-scheduled job its own pool so concurrent solves never contend for
// (or race on) the shared pool's single task slot.  Bindings nest; the pool
// must outlive the binding.
class RuntimeBinding {
 public:
  explicit RuntimeBinding(ThreadPool* pool) noexcept
      : prev_(runtime_detail::tl_pool) {
    runtime_detail::tl_pool = pool;
  }
  ~RuntimeBinding() { runtime_detail::tl_pool = prev_; }
  RuntimeBinding(const RuntimeBinding&) = delete;
  RuntimeBinding& operator=(const RuntimeBinding&) = delete;

 private:
  ThreadPool* prev_;
};

}  // namespace sacpp::sac
