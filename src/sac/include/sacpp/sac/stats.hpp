#pragma once
// Runtime counters of the SAC array system.
//
// The paper's scalability analysis hinges on the cost of dynamic memory
// management on small grids; these counters make that cost observable
// (tests assert on them, bench/abl_memory reports them, and the machine
// model's per-operation overhead constant is motivated by them).  The
// sacpp_obs metrics dump exports them (config.cpp registers the collector),
// so one run artifact carries the whole memory-management story.

#include <atomic>
#include <cstdint>

namespace sacpp::sac {

// A relaxed-atomic counter that behaves like a plain uint64_t field
// (copyable, +=, implicit read).  Used for the counters that worker threads
// mutate: the pool's per-thread magazines serve worker-side allocations, so
// pool hit/miss/return increments can race with the coordinator.  Relaxed is
// enough — these are statistics, not synchronisation.
class RelaxedCounter {
 public:
  RelaxedCounter(std::uint64_t v = 0) noexcept : v_(v) {}  // NOLINT(*-explicit-*)
  RelaxedCounter(const RelaxedCounter& o) noexcept : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::uint64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  std::uint64_t fetch_add(std::uint64_t d) noexcept {
    return v_.fetch_add(d, std::memory_order_relaxed);
  }
  // Approximate increment for per-row hot paths: a plain load+store pair
  // instead of a locked read-modify-write (~3x cheaper on x86).  Concurrent
  // writers may lose counts; callers must only use this where the tally is
  // advisory (the jit dispatch counters), never where tests or control
  // logic need every event.
  void bump() noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return load(); }  // NOLINT(*-explicit-*)
  std::uint64_t load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_;
};

// Every counter is a RelaxedCounter: since the serving subsystem
// (docs/serve.md) runs multiple solves concurrently, each job's executor
// thread is a coordinating thread of its own, so even the counters that a
// single-solve process mutates "only on the coordinator" (with_loops,
// allocations, ...) are now incremented from many threads at once.  Relaxed
// is enough — these are statistics, not synchronisation — and the copy
// constructor gives a consistent-enough snapshot for deltas.
struct RuntimeStats {
  RelaxedCounter allocations;          // fresh buffers allocated
  RelaxedCounter releases;             // buffers freed (refcount reached 0)
  RelaxedCounter bytes_allocated;      // total bytes of fresh buffers
  RelaxedCounter reuses;               // buffers stolen via uniqueness reuse
  RelaxedCounter copies_on_write;      // deep copies forced by shared buffers
  RelaxedCounter with_loops;           // with-loop executions
  RelaxedCounter elements;             // generator elements processed
  RelaxedCounter parallel_regions;     // with-loops run multithreaded
  RelaxedCounter pool_hits;            // buffers served from the BufferPool
  RelaxedCounter pool_misses;          // pooled allocations that hit malloc
  RelaxedCounter pool_returns;         // buffers recycled into the pool
  // Output rows computed through the kPlanes shared plane-sum path
  // (docs/stencil.md): each counted row reused its u1/u2 partial sums across
  // the whole k inner loop.
  RelaxedCounter stencil_rows_reused;
  // Rows dispatched through a vectorized (kSimd / kSimdPortable / kJit)
  // backend's row primitives (docs/backends.md).  Zero under kScalar, so
  // tests and the obs export can tell which engine a run actually used.
  RelaxedCounter backend_simd_rows;
  // The kJit engine (docs/jit.md).  kernel/fallback tally per row-primitive
  // call: a call is a kernel call when the compiled kernel for its shape was
  // ready (an in-memory cache hit), a fallback call when the row ran on the
  // SIMD engine instead (kernel still compiling, row too short to pay for
  // dispatch, or no usable host compiler).
  RelaxedCounter jit_kernel_calls;
  RelaxedCounter jit_compiles;       // kernels built by the host toolchain
  RelaxedCounter jit_compile_fails;  // failed builds (engine degrades)
  RelaxedCounter jit_disk_hits;      // kernels dlopen'd straight from disk
  RelaxedCounter jit_fallback_calls;
};

// Mutable access to the process-global counters.
RuntimeStats& stats();

// Reset all counters to zero (benchmark phases call this between sections).
// Safe against concurrent increments in the data-race sense (every field is
// atomic), but the reset is not a transaction across fields: call it at a
// quiescent point when exact cross-counter consistency matters.  A serving
// process should prefer stats_snapshot() deltas over resetting (resetting
// under live jobs silently truncates their tallies).
void reset_stats();

// A plain-value copy of the counters (each field loaded relaxed).  The serve
// layer and benches compute per-phase deltas from two snapshots instead of
// resetting the globals under live traffic.
RuntimeStats stats_snapshot();

}  // namespace sacpp::sac
