#pragma once
// Runtime counters of the SAC array system.
//
// The paper's scalability analysis hinges on the cost of dynamic memory
// management on small grids; these counters make that cost observable
// (tests assert on them, bench/abl_memory reports them, and the machine
// model's per-operation overhead constant is motivated by them).

#include <cstdint>

namespace sacpp::sac {

struct RuntimeStats {
  std::uint64_t allocations = 0;       // fresh buffers allocated
  std::uint64_t releases = 0;          // buffers freed (refcount reached 0)
  std::uint64_t bytes_allocated = 0;   // total bytes of fresh buffers
  std::uint64_t reuses = 0;            // buffers stolen via uniqueness reuse
  std::uint64_t copies_on_write = 0;   // deep copies forced by shared buffers
  std::uint64_t with_loops = 0;        // with-loop executions
  std::uint64_t elements = 0;          // generator elements processed
  std::uint64_t parallel_regions = 0;  // with-loops run multithreaded
  std::uint64_t pool_hits = 0;         // buffers served from the BufferPool
  std::uint64_t pool_misses = 0;       // pooled allocations that hit malloc
  std::uint64_t pool_returns = 0;      // buffers recycled into the pool
};

// Mutable access to the process-global counters.  The counters are plain
// (non-atomic) because all mutation happens on the coordinating thread:
// workers only execute loop bodies.
RuntimeStats& stats();

// Reset all counters to zero (benchmark phases call this between sections).
void reset_stats();

}  // namespace sacpp::sac
