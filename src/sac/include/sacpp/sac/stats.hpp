#pragma once
// Runtime counters of the SAC array system.
//
// The paper's scalability analysis hinges on the cost of dynamic memory
// management on small grids; these counters make that cost observable
// (tests assert on them, bench/abl_memory reports them, and the machine
// model's per-operation overhead constant is motivated by them).  The
// sacpp_obs metrics dump exports them (config.cpp registers the collector),
// so one run artifact carries the whole memory-management story.

#include <atomic>
#include <cstdint>

namespace sacpp::sac {

// A relaxed-atomic counter that behaves like a plain uint64_t field
// (copyable, +=, implicit read).  Used for the counters that worker threads
// mutate: the pool's per-thread magazines serve worker-side allocations, so
// pool hit/miss/return increments can race with the coordinator.  Relaxed is
// enough — these are statistics, not synchronisation.
class RelaxedCounter {
 public:
  RelaxedCounter(std::uint64_t v = 0) noexcept : v_(v) {}  // NOLINT(*-explicit-*)
  RelaxedCounter(const RelaxedCounter& o) noexcept : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::uint64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  std::uint64_t fetch_add(std::uint64_t d) noexcept {
    return v_.fetch_add(d, std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return load(); }  // NOLINT(*-explicit-*)
  std::uint64_t load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_;
};

struct RuntimeStats {
  std::uint64_t allocations = 0;       // fresh buffers allocated
  std::uint64_t releases = 0;          // buffers freed (refcount reached 0)
  std::uint64_t bytes_allocated = 0;   // total bytes of fresh buffers
  std::uint64_t reuses = 0;            // buffers stolen via uniqueness reuse
  std::uint64_t copies_on_write = 0;   // deep copies forced by shared buffers
  std::uint64_t with_loops = 0;        // with-loop executions
  std::uint64_t elements = 0;          // generator elements processed
  std::uint64_t parallel_regions = 0;  // with-loops run multithreaded
  RelaxedCounter pool_hits;            // buffers served from the BufferPool
  RelaxedCounter pool_misses;          // pooled allocations that hit malloc
  RelaxedCounter pool_returns;         // buffers recycled into the pool
  // Output rows computed through the kPlanes shared plane-sum path
  // (docs/stencil.md): each counted row reused its u1/u2 partial sums across
  // the whole k inner loop.  RelaxedCounter because MT chunks flush their
  // per-chunk row tally from worker threads.
  RelaxedCounter stencil_rows_reused;
};

// Mutable access to the process-global counters.  The plain (non-atomic)
// counters are mutated only on the coordinating thread: workers only execute
// loop bodies.  The pool gauges are RelaxedCounters because buffers created
// or released inside worker-thread code paths (e.g. msg rank bodies) go
// through each thread's own pool magazine.
RuntimeStats& stats();

// Reset all counters to zero (benchmark phases call this between sections).
void reset_stats();

}  // namespace sacpp::sac
