#pragma once
// Runtime kernel cache of the JIT backend (docs/jit.md).
//
// backend_jit.cpp asks the cache for a compiled kernel per row call; the
// cache answers from a lock-free in-memory table in ~15 ns.  On a miss it
// enqueues the program for the background compile thread (or compiles
// inline under SACPP_JIT_SYNC=1) and returns nullptr — the caller runs the
// row on the fallback SIMD engine, and hot-swaps to the kernel on a later
// call once the compile lands.  No row ever waits on the toolchain.
//
// Environment knobs (read dynamically, so tests can flip them):
//   SACPP_JIT_CC        host compiler (default: c++ on PATH)
//   SACPP_JIT_CACHE_DIR persistent .so cache; also the compile workspace
//   SACPP_JIT_SYNC=1    compile on the calling thread (tests, benches)
//
// When a compile fails — no toolchain, unwritable workspace, dlopen error —
// the engine prints one diagnostic, counts stats().jit_compile_fails, and
// permanently degrades to the fallback engine: a slower process, never a
// crash, and bit-identical results (backend.hpp contract).

#include <atomic>
#include <cstdint>

#include "sacpp/sac/jit_ir.hpp"

namespace sacpp::sac::jit {

// Compiled kernel entry point.  One uniform signature for every pattern:
//   in    input row pointers (pre-offset by the caller where documented)
//   out   output row pointers
//   dargs scalar double arguments (folds: dargs[0] = running accumulator)
//   dres  scalar double results  (folds: dres[0] = folded accumulator)
using KernelFn = void (*)(const double* const* in, double* const* out,
                          const double* dargs, double* dres);

// The in-memory cache key: the parameters that distinguish one generated
// kernel from another, cheap enough to hash on every row call.  The full
// RowProgram is only built (and hashed, for the disk name) on a miss.
struct KernelKey {
  std::uint8_t prim = 0;  // backend_jit.cpp's primitive tag
  std::uint8_t accumulate = 0;
  std::int64_t length = 0;
  std::int64_t lo = 0, hi = 0;
  std::int64_t stride = 1;
  std::uint64_t c[4] = {0, 0, 0, 0};  // coefficient bit patterns

  bool operator==(const KernelKey&) const = default;
};

// Ready kernel for `key`, or nullptr.  Never compiles, never blocks.
KernelFn lookup(const KernelKey& key) noexcept;

// Miss path: request a compile of `prog` (keyed by `key`) and return the
// kernel if it is already ready — immediately under SACPP_JIT_SYNC=1 or a
// disk-cache hit, on a later call otherwise.  `make` builds the program
// lazily so the hot path never constructs IR.
KernelFn request(const KernelKey& key, RowProgram (*make)(const KernelKey&));

// Block until every queued compile has finished (bench warm-up, tests,
// golden runs).  A no-op when the queue is empty or the engine is degraded.
void drain();

namespace detail {
// Storage for epoch(); written only by jit_cache.cpp, read inline by the
// per-row dispatch hot path.
extern std::atomic<std::uint32_t> g_epoch;
}  // namespace detail

// Cache generation, bumped by testing::reset() and on engine degradation.
// Callers that memoise raw KernelFn pointers (backend_jit.cpp keeps a
// per-thread last-kernel memo so repeat rows skip the hash-and-probe) must
// revalidate whenever this changes.  The pointers themselves stay callable
// for the process lifetime — entries and dlopen handles are never freed —
// so a stale memo is a staleness bug, not a use-after-free.
inline std::uint32_t epoch() noexcept {
  return detail::g_epoch.load(std::memory_order_acquire);
}

// True once the engine has proven it can compile (first kernel landed);
// false after it has degraded.  Indeterminate (true) before first use.
bool available() noexcept;

namespace testing {
// Drop every in-memory entry and re-arm a degraded engine (the entries and
// dlopen handles leak by design — kernels may still be executing).  Lets
// tests exercise the disk-hit and compiler-missing paths in one process.
void reset();
}  // namespace testing

}  // namespace sacpp::sac::jit
