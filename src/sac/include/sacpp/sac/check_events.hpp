#pragma once
// Checked-mode event recording: the instrumentation half of sacpp_check.
//
// When SacConfig::check is on (or the SACPP_CHECK environment variable is
// set), the array system records raw events here: buffer-ownership
// anomalies from Buffer/Array and the chunk intervals of every parallel
// with-loop region from the MT runtime.  The analysis passes live in
// src/check (sacpp_check) and turn snapshots of these records into
// structured diagnostics — recording stays inside sacpp_sac, analysis
// outside, so the link dependency runs one way only.
//
// Cost with checks off: one predictable branch per recording site and one
// relaxed atomic counter per buffer allocation/free; nothing at all on the
// per-element path.  The live-buffer gauge is always on because the ctest
// leak-balance guard asserts on it even in unchecked runs.

#include <atomic>
#include <cstdint>
#include <vector>

#include "sacpp/common/shape.hpp"

namespace sacpp::sac::check_detail {

// -- live buffer gauge (always on) -------------------------------------------

// Allocations minus frees since process start.  Mutated with relaxed atomics
// because msg ranks (threads) legitimately own disjoint arrays.
extern std::atomic<std::int64_t> g_live_buffers;

inline void note_buffer_alloc() noexcept {
  g_live_buffers.fetch_add(1, std::memory_order_relaxed);
}
inline void note_buffer_free() noexcept {
  g_live_buffers.fetch_sub(1, std::memory_order_relaxed);
}
inline std::int64_t live_buffer_count() noexcept {
  return g_live_buffers.load(std::memory_order_relaxed);
}

// -- buffer ownership events --------------------------------------------------

// True while a checked parallel region executes; Buffer ownership operations
// consult it with one relaxed load so the unchecked hot path stays a single
// global-bool test.
extern std::atomic<bool> g_ownership_watch;

inline bool ownership_watch() noexcept {
  return g_ownership_watch.load(std::memory_order_relaxed);
}

enum class BufferEventKind : std::uint8_t {
  kSharedInPlaceWrite,  // raw in-place write while the buffer was aliased
  kForeignOwnershipOp,  // retain/release off the coordinator inside a region
  kPoolDoubleRelease,   // block released into the BufferPool twice
};

struct BufferEvent {
  BufferEventKind kind;
  std::uint32_t refs;    // reference count at the event (kPoolDoubleRelease
                         // carries the block's size class in bytes instead)
  std::uint64_t region;  // active parallel region id (0 = none)
};

// Record an event (checked mode only; callers guard with config().check or
// ownership_watch()).  noexcept: allocation failure inside the log is
// swallowed rather than thrown through Buffer's noexcept paths.
void record_buffer_event(BufferEventKind kind, std::uint32_t refs) noexcept;

// Called from Buffer::retain/release when the ownership watch is active;
// records a kForeignOwnershipOp when the calling thread is not the region's
// coordinating thread.
void note_ownership_op(std::uint32_t refs) noexcept;

// -- parallel-region chunk records --------------------------------------------

struct RegionRecord {
  std::uint64_t region;  // id (1-based; 0 means "no region")
  extent_t begin, end;   // outer-axis iteration space handed to parallel_for
  extent_t align;        // requested chunk-start alignment
};

struct ChunkRecord {
  std::uint64_t region;
  unsigned worker;
  extent_t lo, hi;  // outer-axis interval [lo, hi) assigned to this worker
  bool write;       // write chunk (genarray/modarray) vs read-only (fold)
};

// Region lifecycle, driven by ThreadPool::parallel_for in checked mode.
// Returns the new region id and arms the ownership watch.
std::uint64_t begin_parallel_region(extent_t begin, extent_t end,
                                    extent_t align) noexcept;
void record_chunk(std::uint64_t region, unsigned worker, extent_t lo,
                  extent_t hi, bool write) noexcept;
void end_parallel_region() noexcept;

// -- snapshots for the analysis layer -----------------------------------------

std::vector<BufferEvent> snapshot_buffer_events();
std::vector<RegionRecord> snapshot_region_records();
std::vector<ChunkRecord> snapshot_chunk_records();

// Drop all recorded events (gauge is unaffected: it tracks live buffers).
void clear_check_events();

}  // namespace sacpp::sac::check_detail
