#pragma once
// Umbrella header for the SAC-style array system.
//
//   Array<T>       value-semantic n-dimensional arrays (array.hpp)
//   with_*         the WITH-loop construct (with_loop.hpp)
//   array library  compound operations defined on top of it (array_lib.hpp)
//   expr           lazy expressions / with-loop folding (expr.hpp)
//   stencil        coefficient-class relaxation kernels (stencil.hpp)
//   config/stats   optimisation switches and runtime counters

#include "sacpp/sac/array.hpp"
#include "sacpp/sac/array_lib.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/pool.hpp"
#include "sacpp/sac/expr.hpp"
#include "sacpp/sac/io.hpp"
#include "sacpp/sac/runtime.hpp"
#include "sacpp/sac/stats.hpp"
#include "sacpp/sac/stencil.hpp"
#include "sacpp/sac/with_loop.hpp"
