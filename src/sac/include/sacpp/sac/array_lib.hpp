#pragma once
// The SAC array library: compound array operations defined *in* the library,
// not as built-ins — the paper's central design point (Sec. 2, Fig. 10).
//
// Every operation here is a thin definition on top of the WITH-loop
// construct.  The eager functions materialise their result; the lazy
// counterparts live in expr.hpp and fuse (with-loop folding).  Eager
// element-wise operations route through force(ewise(...)) so they still use
// the specialised rank-3 execution path.

#include <cmath>
#include <functional>
#include <limits>

#include "sacpp/common/shape.hpp"
#include "sacpp/sac/array.hpp"
#include "sacpp/sac/expr.hpp"
#include "sacpp/sac/with_loop.hpp"

namespace sacpp::sac {

// ---------------------------------------------------------------------------
// Constructors (paper Fig. 10: genarray)
// ---------------------------------------------------------------------------

// genarray(shp, val): constant array of shape shp.
template <typename T>
Array<T> genarray_const(const Shape& shp, T val) {
  return with_genarray<T>(shp, gen_all(), [val](const IndexVec&) { return val; });
}

// iota(n): the vector [0, 1, ..., n-1].
template <typename T = extent_t>
Array<T> iota(extent_t n) {
  return with_genarray<T>(Shape{n}, gen_all(), [](const IndexVec& iv) {
    return static_cast<T>(iv[0]);
  });
}

// ---------------------------------------------------------------------------
// Element-wise maps and zips
// ---------------------------------------------------------------------------

// map(a, fn): element-wise unary application.
template <typename T, typename Fn>
auto map(const Array<T>& a, Fn fn) {
  return force(ewise1(a, std::move(fn)));
}

// zip(a, b, fn): element-wise binary application (equal shapes).
template <typename T, typename Fn>
auto zip(const Array<T>& a, const Array<T>& b, Fn fn) {
  return force(ewise(a, b, std::move(fn)));
}

template <typename T>
Array<T> operator+(const Array<T>& a, const Array<T>& b) {
  return zip(a, b, std::plus<>{});
}
template <typename T>
Array<T> operator-(const Array<T>& a, const Array<T>& b) {
  return zip(a, b, std::minus<>{});
}
template <typename T>
Array<T> operator*(const Array<T>& a, const Array<T>& b) {
  return zip(a, b, std::multiplies<>{});
}
template <typename T>
Array<T> operator/(const Array<T>& a, const Array<T>& b) {
  return zip(a, b, std::divides<>{});
}

// Move-qualified forms: when the left operand is an expiring value the
// result is computed in place in its buffer — C++ move semantics standing
// in for SAC's compile-time reference counting, which reuses an argument
// buffer whenever its reference count drops to one at the operation
// (e.g. `u = u + VCycle(r)` updates u in place in compiled SAC code).
namespace detail {
template <typename T, typename Op>
Array<T> zip_into(Array<T> a, const Array<T>& b, Op op) {
  SACPP_REQUIRE(a.shape() == b.shape(),
                "element-wise operation needs equal shapes");
  const Shape shp = a.shape();
  T* self = a.mutable_data();  // in place when uniquely owned
  const T* other = b.data();
  const auto g = resolve(gen_all(), shp);
  if (shp.rank() == 3) {
    const extent_t e1 = shp.extent(1), e2 = shp.extent(2);
    execute_assign(self, shp, g,
                   rank3_body([=](extent_t i, extent_t j, extent_t k) {
                     const extent_t off = (i * e1 + j) * e2 + k;
                     return op(self[off], other[off]);
                   }));
  } else {
    execute_assign(self, shp, g, [&](const IndexVec& iv) {
      const extent_t off = shp.linearize(iv);
      return op(self[off], other[off]);
    });
  }
  return a;
}
}  // namespace detail

template <typename T>
Array<T> operator+(Array<T>&& a, const Array<T>& b) {
  return detail::zip_into(std::move(a), b, std::plus<>{});
}
template <typename T>
Array<T> operator-(Array<T>&& a, const Array<T>& b) {
  return detail::zip_into(std::move(a), b, std::minus<>{});
}
template <typename T>
Array<T> operator*(Array<T>&& a, const Array<T>& b) {
  return detail::zip_into(std::move(a), b, std::multiplies<>{});
}

template <typename T>
Array<T> operator+(const Array<T>& a, T s) {
  return map(a, [s](T v) { return v + s; });
}
template <typename T>
Array<T> operator+(T s, const Array<T>& a) {
  return a + s;
}
template <typename T>
Array<T> operator-(const Array<T>& a, T s) {
  return map(a, [s](T v) { return v - s; });
}
template <typename T>
Array<T> operator*(const Array<T>& a, T s) {
  return map(a, [s](T v) { return v * s; });
}
template <typename T>
Array<T> operator*(T s, const Array<T>& a) {
  return a * s;
}
template <typename T>
Array<T> operator/(const Array<T>& a, T s) {
  return map(a, [s](T v) { return v / s; });
}
template <typename T>
Array<T> operator-(const Array<T>& a) {
  return map(a, [](T v) { return -v; });
}

template <typename T>
Array<T> abs(const Array<T>& a) {
  return map(a, [](T v) { return v < T{} ? -v : v; });
}

// ---------------------------------------------------------------------------
// Reductions (fold with-loops)
// ---------------------------------------------------------------------------

template <typename T>
T sum(const Array<T>& a) {
  return with_fold(
      std::plus<>{}, T{}, a.shape(), gen_all(),
      [&a](const IndexVec& iv) { return a[iv]; });
}

template <typename T>
T prod(const Array<T>& a) {
  return with_fold(
      std::multiplies<>{}, T{1}, a.shape(), gen_all(),
      [&a](const IndexVec& iv) { return a[iv]; });
}

template <typename T>
T max_elem(const Array<T>& a) {
  SACPP_REQUIRE(a.elem_count() > 0, "max_elem of empty array");
  return with_fold(
      [](T x, T y) { return x > y ? x : y; }, a.at_linear(0), a.shape(),
      gen_all(), [&a](const IndexVec& iv) { return a[iv]; });
}

template <typename T>
T min_elem(const Array<T>& a) {
  SACPP_REQUIRE(a.elem_count() > 0, "min_elem of empty array");
  return with_fold(
      [](T x, T y) { return x < y ? x : y; }, a.at_linear(0), a.shape(),
      gen_all(), [&a](const IndexVec& iv) { return a[iv]; });
}

template <typename T>
T max_abs(const Array<T>& a) {
  return with_fold(
      [](T x, T y) { return x > y ? x : y; }, T{}, a.shape(), gen_all(),
      [&a](const IndexVec& iv) {
        const T v = a[iv];
        return v < T{} ? -v : v;
      });
}

// Fold bodies carrying the backend row-fold protocol (detail::RowFoldBody,
// docs/backends.md).  Under kScalar the accumulator threads through row
// elements in row-major order — bit-identical to the generic fold walker —
// while vectorized backends reassociate per row into the fixed four-lane
// structure documented in backend.hpp.  Contract: pass the matching
// operation (plus / max) to with_fold, since chunk partials still merge
// through it.

struct SumSqRows {
  Array<double> a;
  const Backend* be = &active_backend();

  double operator()(const IndexVec& iv) const {
    const double x = a[iv];
    return x * x;
  }
  double operator()(extent_t i, extent_t j, extent_t k) const {
    const Shape& s = a.shape();
    const double x = a.data()[(i * s[1] + j) * s[2] + k];
    return x * x;
  }
  bool row_fold_enabled() const { return a.rank() == 3; }
  double fold_row(double acc, extent_t i, extent_t j, extent_t k_lo,
                  extent_t k_hi) const {
    const Shape& s = a.shape();
    return be->sum_sq_row(acc, a.data() + (i * s[1] + j) * s[2], k_lo, k_hi);
  }
};

struct MaxAbsRows {
  Array<double> a;
  const Backend* be = &active_backend();

  double operator()(const IndexVec& iv) const {
    const double v = a[iv];
    return v < 0.0 ? -v : v;
  }
  double operator()(extent_t i, extent_t j, extent_t k) const {
    const Shape& s = a.shape();
    const double v = a.data()[(i * s[1] + j) * s[2] + k];
    return v < 0.0 ? -v : v;
  }
  bool row_fold_enabled() const { return a.rank() == 3; }
  double fold_row(double acc, extent_t i, extent_t j, extent_t k_lo,
                  extent_t k_hi) const {
    const Shape& s = a.shape();
    return be->max_abs_row(acc, a.data() + (i * s[1] + j) * s[2], k_lo, k_hi);
  }
};

inline SumSqRows sum_sq_rows(Array<double> a) {
  return SumSqRows{std::move(a)};
}
inline MaxAbsRows max_abs_rows(Array<double> a) {
  return MaxAbsRows{std::move(a)};
}

// Rank-aware overload: double arrays reduce through the backend row fold.
inline double max_abs(const Array<double>& a) {
  return with_fold([](double x, double y) { return x > y ? x : y; }, 0.0,
                   a.shape(), gen_all(), MaxAbsRows{a});
}

template <typename T>
T dot(const Array<T>& a, const Array<T>& b) {
  SACPP_REQUIRE(a.shape() == b.shape(), "dot needs equal shapes");
  return with_fold(
      std::plus<>{}, T{}, a.shape(), gen_all(),
      [&](const IndexVec& iv) { return a[iv] * b[iv]; });
}

// ---------------------------------------------------------------------------
// Structural operations (paper Fig. 10)
// ---------------------------------------------------------------------------

// condense(str, a): every str-th element along every axis; shape(a)/str.
template <typename T>
Array<T> condense(extent_t str, const Array<T>& a) {
  return force(lazy_condense(str, a));
}

// scatter(str, a): a's elements spread with stride str, zeros between;
// shape str*shape(a).
template <typename T>
Array<T> scatter(extent_t str, const Array<T>& a) {
  return force(lazy_scatter(str, a));
}

// embed(shp, pos, a): a placed at pos inside a zero array of shape shp.
template <typename T>
Array<T> embed(const IndexVec& shp, const IndexVec& pos, const Array<T>& a) {
  SACPP_REQUIRE(shp.size() == a.rank(), "embed rank mismatch");
  for (std::size_t d = 0; d < shp.size(); ++d) {
    SACPP_REQUIRE(pos[d] >= 0 && pos[d] + a.shape().extent(d) <= shp[d],
                  "embedded array exceeds target shape");
  }
  return force(lazy_embed(shp, pos, a));
}

// take(shp, a): the leading box of extent shp.
template <typename T>
Array<T> take(const IndexVec& shp, const Array<T>& a) {
  SACPP_REQUIRE(shp.size() == a.rank(), "take rank mismatch");
  for (std::size_t d = 0; d < shp.size(); ++d) {
    SACPP_REQUIRE(shp[d] >= 0 && shp[d] <= a.shape().extent(d),
                  "take extent exceeds array shape");
  }
  return force(lazy_take(shp, a));
}

// drop(n, a): a without its first n[d] elements along each axis.
template <typename T>
Array<T> drop(const IndexVec& n, const Array<T>& a) {
  SACPP_REQUIRE(n.size() == a.rank(), "drop rank mismatch");
  IndexVec out_shape(a.rank());
  for (std::size_t d = 0; d < n.size(); ++d) {
    SACPP_REQUIRE(n[d] >= 0 && n[d] <= a.shape().extent(d),
                  "drop count exceeds array shape");
    out_shape[d] = a.shape().extent(d) - n[d];
  }
  return with_genarray<T>(Shape(out_shape), gen_all(),
                          [&](const IndexVec& iv) { return a[iv + n]; });
}

// shift(offset, a): elements moved by offset, vacated positions zero.
template <typename T>
Array<T> shift(const IndexVec& offset, const Array<T>& a) {
  SACPP_REQUIRE(offset.size() == a.rank(), "shift rank mismatch");
  return with_genarray<T>(a.shape(), gen_all(), [&](const IndexVec& iv) {
    IndexVec src = iv - offset;
    return a.shape().contains(src) ? a[src] : T{};
  });
}

// rotate(offset, a): cyclic shift by offset along every axis.
template <typename T>
Array<T> rotate(const IndexVec& offset, const Array<T>& a) {
  SACPP_REQUIRE(offset.size() == a.rank(), "rotate rank mismatch");
  return with_genarray<T>(a.shape(), gen_all(), [&](const IndexVec& iv) {
    IndexVec src(iv.size());
    for (std::size_t d = 0; d < iv.size(); ++d) {
      const extent_t e = a.shape().extent(d);
      src[d] = ((iv[d] - offset[d]) % e + e) % e;
    }
    return a[src];
  });
}

// reverse(axis, a): elements mirrored along one axis.
template <typename T>
Array<T> reverse(std::size_t axis, const Array<T>& a) {
  SACPP_REQUIRE(axis < a.rank(), "reverse axis out of range");
  return with_genarray<T>(a.shape(), gen_all(), [&](const IndexVec& iv) {
    IndexVec src(iv.begin(), iv.end());
    src[axis] = a.shape().extent(axis) - 1 - iv[axis];
    return a[src];
  });
}

// transpose(a): axes reversed (APL transpose for rank 2; generalised).
template <typename T>
Array<T> transpose(const Array<T>& a) {
  IndexVec out_shape(a.rank());
  for (std::size_t d = 0; d < a.rank(); ++d) {
    out_shape[d] = a.shape().extent(a.rank() - 1 - d);
  }
  return with_genarray<T>(Shape(out_shape), gen_all(),
                          [&](const IndexVec& iv) {
                            IndexVec src(iv.size());
                            for (std::size_t d = 0; d < iv.size(); ++d) {
                              src[d] = iv[iv.size() - 1 - d];
                            }
                            return a[src];
                          });
}

// reshape(shp, a): same row-major element sequence, new shape.
template <typename T>
Array<T> reshape(const Shape& shp, const Array<T>& a) {
  SACPP_REQUIRE(shp.elem_count() == a.elem_count(),
                "reshape must preserve the element count");
  return with_genarray<T>(shp, gen_all(), [&](const IndexVec& iv) {
    return a.at_linear(shp.linearize(iv));
  });
}

// ---------------------------------------------------------------------------
// Subarray selection and slicing
// ---------------------------------------------------------------------------

// sel(prefix, a): SAC's selection with a partial index vector — indexing an
// array of rank r with a vector of length m < r yields the rank (r - m)
// subarray at that prefix (a[i] of a matrix is its i-th row).
template <typename T>
Array<T> sel(const IndexVec& prefix, const Array<T>& a) {
  SACPP_REQUIRE(prefix.size() <= a.rank(), "selection prefix too long");
  IndexVec rest;
  for (std::size_t d = prefix.size(); d < a.rank(); ++d) {
    rest.push_back(a.shape().extent(d));
  }
  for (std::size_t d = 0; d < prefix.size(); ++d) {
    SACPP_REQUIRE(prefix[d] >= 0 && prefix[d] < a.shape().extent(d),
                  "selection prefix out of range");
  }
  return with_genarray<T>(Shape(rest), gen_all(), [&](const IndexVec& iv) {
    IndexVec full(prefix.begin(), prefix.end());
    for (extent_t x : iv) full.push_back(x);
    return a[full];
  });
}

// slice(lower, upper, a): the rectangular subarray lower <= iv < upper
// (take and drop generalised to an arbitrary box).
template <typename T>
Array<T> slice(const IndexVec& lower, const IndexVec& upper,
               const Array<T>& a) {
  SACPP_REQUIRE(lower.size() == a.rank() && upper.size() == a.rank(),
                "slice bound rank mismatch");
  IndexVec out_shape(a.rank());
  for (std::size_t d = 0; d < a.rank(); ++d) {
    SACPP_REQUIRE(lower[d] >= 0 && upper[d] >= lower[d] &&
                      upper[d] <= a.shape().extent(d),
                  "slice bounds out of range");
    out_shape[d] = upper[d] - lower[d];
  }
  return with_genarray<T>(Shape(out_shape), gen_all(),
                          [&](const IndexVec& iv) { return a[iv + lower]; });
}

// catenate(axis, a, b): a and b joined along `axis` (APL's , and SAC's ++);
// all other extents must agree.
template <typename T>
Array<T> catenate(std::size_t axis, const Array<T>& a, const Array<T>& b) {
  SACPP_REQUIRE(a.rank() == b.rank(), "catenate rank mismatch");
  SACPP_REQUIRE(axis < a.rank(), "catenate axis out of range");
  IndexVec out_shape(a.rank());
  for (std::size_t d = 0; d < a.rank(); ++d) {
    if (d == axis) {
      out_shape[d] = a.shape().extent(d) + b.shape().extent(d);
    } else {
      SACPP_REQUIRE(a.shape().extent(d) == b.shape().extent(d),
                    "catenate non-axis extents must agree");
      out_shape[d] = a.shape().extent(d);
    }
  }
  const extent_t split = a.shape().extent(axis);
  return with_genarray<T>(Shape(out_shape), gen_all(),
                          [&, split](const IndexVec& iv) {
                            if (iv[axis] < split) return a[iv];
                            IndexVec src(iv.begin(), iv.end());
                            src[axis] -= split;
                            return b[src];
                          });
}

// ---------------------------------------------------------------------------
// Axis-wise reductions and scans
// ---------------------------------------------------------------------------

// reduce_axis(axis, a, op, neutral): fold along one axis; rank drops by one.
template <typename T, typename Op>
Array<T> reduce_axis(std::size_t axis, const Array<T>& a, Op op, T neutral) {
  SACPP_REQUIRE(axis < a.rank(), "reduction axis out of range");
  IndexVec out_shape;
  for (std::size_t d = 0; d < a.rank(); ++d) {
    if (d != axis) out_shape.push_back(a.shape().extent(d));
  }
  const extent_t len = a.shape().extent(axis);
  return with_genarray<T>(Shape(out_shape), gen_all(),
                          [&](const IndexVec& iv) {
                            IndexVec full(a.rank());
                            std::size_t s = 0;
                            for (std::size_t d = 0; d < a.rank(); ++d) {
                              if (d != axis) full[d] = iv[s++];
                            }
                            T acc = neutral;
                            for (extent_t x = 0; x < len; ++x) {
                              full[axis] = x;
                              acc = op(acc, a[full]);
                            }
                            return acc;
                          });
}

template <typename T>
Array<T> sum_axis(std::size_t axis, const Array<T>& a) {
  return reduce_axis(axis, a, std::plus<>{}, T{});
}

template <typename T>
Array<T> max_axis(std::size_t axis, const Array<T>& a) {
  SACPP_REQUIRE(a.shape().extent(axis) > 0, "max over empty axis");
  // fold from the first element so no artificial lower bound is needed
  return reduce_axis(
      axis, a, [](T x, T y) { return x > y ? x : y; },
      std::numeric_limits<T>::lowest());
}

// scan_axis(axis, a, op, neutral): inclusive prefix fold along one axis
// (APL's scan); same shape as a.
template <typename T, typename Op>
Array<T> scan_axis(std::size_t axis, const Array<T>& a, Op op, T neutral) {
  SACPP_REQUIRE(axis < a.rank(), "scan axis out of range");
  return with_genarray<T>(a.shape(), gen_all(), [&](const IndexVec& iv) {
    IndexVec src(iv.begin(), iv.end());
    T acc = neutral;
    for (extent_t x = 0; x <= iv[axis]; ++x) {
      src[axis] = x;
      acc = op(acc, a[src]);
    }
    return acc;
  });
}

template <typename T>
Array<T> cumsum_axis(std::size_t axis, const Array<T>& a) {
  return scan_axis(axis, a, std::plus<>{}, T{});
}

// where(mask, a, b): element-wise selection — a where mask is non-zero,
// b elsewhere.
template <typename T>
Array<T> where(const Array<T>& mask, const Array<T>& a, const Array<T>& b) {
  SACPP_REQUIRE(mask.shape() == a.shape() && a.shape() == b.shape(),
                "where needs equal shapes");
  return with_genarray<T>(a.shape(), gen_all(), [&](const IndexVec& iv) {
    return mask[iv] != T{} ? a[iv] : b[iv];
  });
}

// count_if-style fold: number of elements satisfying a predicate.
template <typename T, typename Pred>
extent_t count_where(const Array<T>& a, Pred pred) {
  return with_fold(
      std::plus<>{}, extent_t{0}, a.shape(), gen_all(),
      [&](const IndexVec& iv) { return pred(a[iv]) ? extent_t{1} : extent_t{0}; });
}

// tile(a, reps): a replicated periodically to shape reps*shape(a).
template <typename T>
Array<T> tile(const Array<T>& a, extent_t reps) {
  SACPP_REQUIRE(reps >= 1, "tile repetition must be >= 1");
  const Shape out(reps * a.shape().extents());
  return with_genarray<T>(out, gen_all(), [&](const IndexVec& iv) {
    IndexVec src(iv.size());
    for (std::size_t d = 0; d < iv.size(); ++d) {
      src[d] = iv[d] % a.shape().extent(d);
    }
    return a[src];
  });
}

}  // namespace sacpp::sac
