#pragma once
// The WITH-loop: SAC's single array-comprehension construct.
//
//   with ( lower <= iv < upper [step s [width w]] )
//     genarray( shp, expr )   |  modarray( array, expr )  |
//     fold( op, neutral, expr )
//
// Gen describes the generator.  Empty bound vectors play the role of the
// paper's "dots" (smallest / largest legal index vector for the result
// shape); length-1 bounds against a higher-rank result are replicated, the
// paper's scalar-replication shorthand.
//
// Execution applies the optimisation strategies selected in SacConfig:
// dense rank-3 generators can run through an unrolled loop nest
// (specialisation, D3), and large generators run multithreaded over the
// outermost axis through the persistent thread pool (implicit MT), with
// strided generators chunk-aligned to their step so the grid phase is
// preserved.
//
// Loop bodies receive the index vector (`T body(const IndexVec&)`); bodies
// that additionally accept unpacked rank-3 indices (`T body(i, j, k)`) get
// the index-vector-elimination fast path.

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "sacpp/common/error.hpp"
#include "sacpp/common/index_space.hpp"
#include "sacpp/common/shape.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/sac/array.hpp"
#include "sacpp/sac/backend.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/runtime.hpp"
#include "sacpp/sac/stats.hpp"

namespace sacpp::sac {

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

struct Gen {
  IndexVec lower;  // empty: ". <=" (zero vector)
  IndexVec upper;  // empty: "<= ." (result shape, exclusive)
  IndexVec step;   // empty: dense
  IndexVec width;  // empty: width 1

  Gen&& with_step(IndexVec s) && {
    step = std::move(s);
    return std::move(*this);
  }
  Gen&& with_width(IndexVec w) && {
    width = std::move(w);
    return std::move(*this);
  }
  Gen&& with_step(extent_t s) && { return std::move(*this).with_step(IndexVec{s}); }
  Gen&& with_width(extent_t w) && {
    return std::move(*this).with_width(IndexVec{w});
  }
};

// The full index space of the result: "with (. <= iv <= .)".
inline Gen gen_all() { return Gen{}; }

// Explicit rectangular range.
inline Gen gen_range(IndexVec lower, IndexVec upper) {
  return Gen{std::move(lower), std::move(upper), {}, {}};
}

// Interior of a shape with a margin on every side (common stencil pattern).
// An extent smaller than 2*margin would make upper < lower on that axis —
// a silently empty generator that has hidden real bugs — so it is rejected
// with the same diagnostic contract as the other degenerate generators in
// detail::resolve (extent == 2*margin is a legal empty interior).
inline Gen gen_interior(const Shape& shp, extent_t margin = 1) {
  SACPP_REQUIRE(margin >= 0, "gen_interior margin must be >= 0");
  for (std::size_t d = 0; d < shp.rank(); ++d) {
    SACPP_REQUIRE(shp.extent(d) >= 2 * margin,
                  "gen_interior extent smaller than 2*margin");
  }
  return gen_range(uniform_vec(shp.rank(), margin), shp.extents() - margin);
}

namespace detail {

struct ResolvedGen {
  IndexVec lower, upper, step, width;
  bool dense = true;       // no step/width filter
  bool full = false;       // covers the entire result shape densely
  extent_t count = 0;      // number of generator elements
};

// Replicate a length-1 vector to the target rank (scalar shorthand).
inline IndexVec replicate(const IndexVec& v, std::size_t rank,
                          extent_t dflt) {
  if (v.empty()) return uniform_vec(rank, dflt);
  if (v.size() == 1 && rank != 1) return uniform_vec(rank, v[0]);
  SACPP_REQUIRE(v.size() == rank,
                "generator vector rank does not match result rank");
  return IndexVec(v.begin(), v.end());
}

inline ResolvedGen resolve(const Gen& g, const Shape& result_shape) {
  const std::size_t rank = result_shape.rank();
  ResolvedGen r;
  r.lower = replicate(g.lower, rank, 0);
  r.upper = g.upper.empty() ? IndexVec(result_shape.extents().begin(),
                                       result_shape.extents().end())
                            : replicate(g.upper, rank, 0);
  r.step = replicate(g.step, rank, 1);
  r.width = g.width.empty() ? IndexVec(rank, 1)
                            : replicate(g.width, rank, 1);
  if (g.step.empty() && !g.width.empty()) {
    // width without step is meaningless; SAC forbids it.
    SACPP_REQUIRE(false, "generator width given without step");
  }
  r.dense = true;
  for (std::size_t d = 0; d < rank; ++d) {
    SACPP_REQUIRE(r.lower[d] >= 0, "generator lower bound negative");
    SACPP_REQUIRE(r.upper[d] <= result_shape.extent(d),
                  "generator upper bound exceeds result shape");
    SACPP_REQUIRE(r.step[d] >= 1, "generator step must be >= 1");
    SACPP_REQUIRE(r.width[d] >= 1 && r.width[d] <= r.step[d],
                  "generator width must be in [1, step]");
    if (r.step[d] != 1) r.dense = false;
  }
  r.count = grid_count(r.lower, r.upper, r.step, r.width);
  r.full = r.dense && r.count == result_shape.elem_count();
  return r;
}

// -- body invocation ---------------------------------------------------------

template <typename Body>
concept TripleIndexBody = requires(const Body& b, extent_t i) { b(i, i, i); };

// Bodies that can produce a whole contiguous k-row at once, carrying scratch
// state across rows (the kPlanes shared plane-sum protocol, docs/stencil.md):
//  * row_fill_enabled() — dynamic opt-in (mode and grid-size cutover);
//  * make_row_state()   — per-chunk scratch (each parallel chunk owns one,
//                         so worker threads never share row buffers);
//  * fill_row(state, i, j, out_row, k_lo, k_hi) — write out_row[k_lo..k_hi).
template <typename Body, typename T>
concept RowFillBody = requires(const Body& b, T* out, extent_t i) {
  { b.row_fill_enabled() } -> std::convertible_to<bool>;
  b.make_row_state();
  requires requires(decltype(b.make_row_state())& st) {
    b.fill_row(st, i, i, out, i, i);
  };
};

// Fold bodies that can fold a whole contiguous k-row into a running
// accumulator (the backend row-fold protocol, docs/backends.md):
//  * row_fold_enabled() — dynamic opt-in;
//  * fold_row(acc, i, j, k_lo, k_hi) — returns acc folded with the body's
//    value at every (i, j, k) for k in [k_lo, k_hi).
// Contract: fold_row must combine with the same operation as the `op`
// handed to with_fold — parallel chunk partials are still merged with op.
// Under kScalar the fold threads acc through elements in row-major order,
// bit-identical to the generic walker; vectorized backends reassociate per
// row in the fixed lane order backend.hpp defines.
template <typename Body, typename T>
concept RowFoldBody = requires(const Body& b, T acc, extent_t i) {
  { b.row_fold_enabled() } -> std::convertible_to<bool>;
  { b.fold_row(acc, i, i, i, i) } -> std::convertible_to<T>;
};

// Tally for stats().backend_simd_rows: one shared-counter add per with-loop
// (not per row — worker threads must not contend on the counter).
inline void count_backend_rows(const ResolvedGen& g) {
  if (active_backend().vectorized()) {
    stats().backend_simd_rows += static_cast<std::uint64_t>(
        (g.upper[0] - g.lower[0]) * (g.upper[1] - g.lower[1]));
  }
}

// -- element walkers ---------------------------------------------------------

// Walk one generator over a sub-range of the outermost axis, calling
// visit(linear_offset, iv) for each member.  `strides` are the row-major
// strides of the result array.
template <typename Visit>
void walk_range(const ResolvedGen& g, const IndexVec& strides,
                extent_t axis0_lo, extent_t axis0_hi, Visit&& visit) {
  IndexVec lo(g.lower.begin(), g.lower.end());
  IndexVec hi(g.upper.begin(), g.upper.end());
  lo[0] = axis0_lo;
  hi[0] = axis0_hi;
  if (g.dense) {
    for_each_index(lo, hi, [&](const IndexVec& iv) {
      extent_t off = 0;
      for (std::size_t d = 0; d < iv.size(); ++d) off += iv[d] * strides[d];
      visit(off, iv);
    });
  } else {
    for_each_index_grid(lo, hi, g.step, g.width, [&](const IndexVec& iv) {
      extent_t off = 0;
      for (std::size_t d = 0; d < iv.size(); ++d) off += iv[d] * strides[d];
      visit(off, iv);
    });
  }
}

// Decide whether this generator runs multithreaded under the current config.
inline bool run_parallel(const ResolvedGen& g) {
  const SacConfig& cfg = active_config();
  if (!cfg.mt_enabled) return false;
  if (g.count < cfg.mt_threshold) return false;
  if (g.lower.empty()) return false;  // rank-0
  return g.upper[0] - g.lower[0] >= 2;
}

// Assign body values into `out` over the generator set.  This is the heart
// of every with-loop variant.  The loops live in execute_assign_loops and
// execute_assign brackets the single call with plain clock reads instead of
// an obs::ScopedSpan: a span object in the loops' frame costs ~5% on the
// dense stencil path even when disabled (its non-trivial destructor pins
// extra live state and exception cleanups around the hot loops), and a
// second call site for the loops stops them inlining into the caller.
template <typename T, typename Body>
void execute_assign_loops(T* out, const Shape& shape, const ResolvedGen& g,
                          const Body& body) {
  const IndexVec strides = shape.strides();
  const std::size_t rank = shape.rank();

  // Rank-3 dense row-fill path: the body produces whole k-rows, reusing
  // per-chunk scratch across rows (kPlanes plane sums).  Checked before the
  // per-point specialisation so fused stencil expressions land here.  The
  // nested span uses plain clock reads for the same reason execute_assign
  // does — a span object in this frame would tax the loops even when off.
  if constexpr (RowFillBody<Body, T>) {
    if (rank == 3 && g.dense && active_config().specialize &&
        body.row_fill_enabled()) {
      const extent_t s0 = strides[0], s1 = strides[1];
      std::int64_t t0 = -1;
      if (obs::enabled()) [[unlikely]] t0 = obs::now_ns();
      auto chunk = [&](extent_t lo0, extent_t hi0, unsigned) {
        auto state = body.make_row_state();
        for (extent_t i = lo0; i < hi0; ++i) {
          for (extent_t j = g.lower[1]; j < g.upper[1]; ++j) {
            body.fill_row(state, i, j, out + i * s0 + j * s1, g.lower[2],
                          g.upper[2]);
          }
        }
      };
      if (run_parallel(g)) {
        stats().parallel_regions += 1;
        runtime().parallel_for(g.lower[0], g.upper[0], 1, chunk);
      } else {
        chunk(g.lower[0], g.upper[0], 0);
      }
      count_backend_rows(g);
      if (t0 >= 0) [[unlikely]] {
        obs::record_span(obs::SpanKind::kWithLoop, "with_loop_rows", t0,
                         obs::now_ns() - t0, g.count);
      }
      return;
    }
  }

  // Rank-3 dense specialised path (with-loop scalarisation + IVE).
  if constexpr (TripleIndexBody<Body>) {
    if (rank == 3 && g.dense && active_config().specialize) {
      const extent_t s0 = strides[0], s1 = strides[1];
      auto chunk = [&](extent_t lo0, extent_t hi0, unsigned) {
        for (extent_t i = lo0; i < hi0; ++i) {
          for (extent_t j = g.lower[1]; j < g.upper[1]; ++j) {
            T* row = out + i * s0 + j * s1;
            for (extent_t k = g.lower[2]; k < g.upper[2]; ++k) {
              row[k] = body(i, j, k);
            }
          }
        }
      };
      if (run_parallel(g)) {
        stats().parallel_regions += 1;
        runtime().parallel_for(g.lower[0], g.upper[0], 1, chunk);
      } else {
        chunk(g.lower[0], g.upper[0], 0);
      }
      return;
    }
  }

  // Generic path.
  auto chunk = [&](extent_t lo0, extent_t hi0, unsigned) {
    walk_range(g, strides, lo0, hi0,
               [&](extent_t off, const IndexVec& iv) { out[off] = body(iv); });
  };
  if (rank > 0 && run_parallel(g)) {
    stats().parallel_regions += 1;
    runtime().parallel_for(g.lower[0], g.upper[0], g.step[0], chunk);
  } else if (rank == 0) {
    out[0] = body(IndexVec{});
  } else {
    chunk(g.lower[0], g.upper[0], 0);
  }
}

template <typename T, typename Body>
void execute_assign(T* out, const Shape& shape, const ResolvedGen& g,
                    const Body& body) {
  stats().with_loops += 1;
  stats().elements += static_cast<std::uint64_t>(g.count);
  std::int64_t t0 = -1;
  if (obs::enabled()) [[unlikely]] t0 = obs::now_ns();
  execute_assign_loops(out, shape, g, body);
  if (t0 >= 0) [[unlikely]] {
    obs::record_span(obs::SpanKind::kWithLoop, "with_loop", t0,
                     obs::now_ns() - t0, g.count);
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// genarray / modarray / fold
// ---------------------------------------------------------------------------

// with (gen) genarray(shp, body(iv)); elements outside the generator are
// `dflt` (SAC default: 0).
template <typename T, typename Body>
Array<T> with_genarray(const Shape& shp, const Gen& gen, const Body& body,
                       T dflt = T{}) {
  const auto g = detail::resolve(gen, shp);
  Array<T> out = Array<T>::uninitialized(shp);
  T* data = out.raw_data_unchecked();
  if (!g.full) {
    std::fill_n(data, static_cast<std::size_t>(shp.elem_count()), dflt);
  }
  detail::execute_assign(data, shp, g, body);
  return out;
}

// Dense full-shape genarray: with (. <= iv <= .) genarray(shp, body).
template <typename T, typename Body>
Array<T> with_genarray(const Shape& shp, const Body& body) {
  return with_genarray<T>(shp, gen_all(), body);
}

// with (gen) modarray(base, body(iv)); elements outside the generator keep
// their value from `base`.  Takes `base` by value: when the caller's value
// was the last reference, the buffer is reused in place (SAC's
// reference-counting reuse); otherwise copy-on-write makes a private copy.
template <typename T, typename Body>
Array<T> with_modarray(Array<T> base, const Gen& gen, const Body& body) {
  const auto g = detail::resolve(gen, base.shape());
  T* data = base.mutable_data();
  detail::execute_assign(data, base.shape(), g, body);
  return base;
}

namespace detail {

// Loop bodies of with_fold; see execute_assign_loops for why the telemetry
// span must not share a frame with these loops.
template <typename T, typename FoldOp, typename Body>
T with_fold_loops(const FoldOp& op, T neutral, const Shape& space,
                  const ResolvedGen& g, const Body& body) {
  const IndexVec strides = space.strides();

  if (space.rank() == 0) {
    return op(neutral, body(IndexVec{}));
  }

  // Rank-3 dense row-fold path (RowFoldBody): the body folds whole k-rows
  // through the active backend's row primitives.  Chunk partials are
  // combined with op exactly like the generic MT path, so the scalar
  // backend stays bit-identical to the walker below at any thread count.
  if constexpr (RowFoldBody<Body, T>) {
    if (space.rank() == 3 && g.dense && active_config().specialize &&
        body.row_fold_enabled()) {
      auto fold_rows = [&](extent_t lo0, extent_t hi0) {
        T acc = neutral;
        for (extent_t i = lo0; i < hi0; ++i) {
          for (extent_t j = g.lower[1]; j < g.upper[1]; ++j) {
            acc = body.fold_row(acc, i, j, g.lower[2], g.upper[2]);
          }
        }
        return acc;
      };
      T acc = neutral;
      if (detail::run_parallel(g)) {
        stats().parallel_regions += 1;
        const unsigned participants = runtime().thread_count();
        std::vector<T> partial(participants, neutral);
        runtime().parallel_for(g.lower[0], g.upper[0], 1,
                               [&](extent_t lo0, extent_t hi0, unsigned who) {
                                 partial[who] = fold_rows(lo0, hi0);
                               });
        for (const T& p : partial) acc = op(acc, p);
      } else {
        acc = fold_rows(g.lower[0], g.upper[0]);
      }
      detail::count_backend_rows(g);
      return acc;
    }
  }

  if (detail::run_parallel(g)) {
    stats().parallel_regions += 1;
    const unsigned participants = runtime().thread_count();
    std::vector<T> partial(participants, neutral);
    runtime().parallel_for(
        g.lower[0], g.upper[0], g.step[0],
        [&](extent_t lo0, extent_t hi0, unsigned who) {
          T acc = neutral;
          detail::walk_range(g, strides, lo0, hi0,
                             [&](extent_t, const IndexVec& iv) {
                               acc = op(acc, body(iv));
                             });
          partial[who] = acc;
        });
    T acc = neutral;
    for (const T& p : partial) acc = op(acc, p);
    return acc;
  }

  T acc = neutral;
  detail::walk_range(g, strides, g.lower[0], g.upper[0],
                     [&](extent_t, const IndexVec& iv) {
                       acc = op(acc, body(iv));
                     });
  return acc;
}

}  // namespace detail

// with (gen) fold(op, neutral, body(iv)).  `op` must be associative and
// commutative (SAC's fold requirement); partial results of parallel chunks
// are combined with the same op.
template <typename T, typename FoldOp, typename Body>
T with_fold(const FoldOp& op, T neutral, const Shape& space, const Gen& gen,
            const Body& body) {
  const auto g = detail::resolve(gen, space);
  stats().with_loops += 1;
  stats().elements += static_cast<std::uint64_t>(g.count);
  std::int64_t t0 = -1;
  if (obs::enabled()) [[unlikely]] t0 = obs::now_ns();
  T result = detail::with_fold_loops(op, neutral, space, g, body);
  if (t0 >= 0) [[unlikely]] {
    obs::record_span(obs::SpanKind::kFold, "fold", t0, obs::now_ns() - t0,
                     g.count);
  }
  return result;
}

// Wrap a rank-3 element function f(i, j, k) into a body usable on both the
// specialised and the generic execution path (the generic path unpacks the
// index vector).
template <typename F>
struct Rank3Body {
  F f;
  auto operator()(extent_t i, extent_t j, extent_t k) const {
    return f(i, j, k);
  }
  auto operator()(const IndexVec& iv) const {
    SACPP_ASSERT(iv.size() == 3, "rank-3 body applied to non-rank-3 index");
    return f(iv[0], iv[1], iv[2]);
  }
};

template <typename F>
Rank3Body<F> rank3_body(F f) {
  return Rank3Body<F>{std::move(f)};
}

// ---------------------------------------------------------------------------
// Multi-partition with-loops
// ---------------------------------------------------------------------------
//
// SAC with-loops may carry several (generator, expression) partitions; the
// border-setup code uses one partition per grid face.  Partitions must be
// disjoint (unchecked, like SAC).

template <typename T>
struct Partition {
  Gen gen;
  std::function<T(const IndexVec&)> body;
};

template <typename T>
Array<T> with_modarray_parts(Array<T> base,
                             const std::vector<Partition<T>>& parts) {
  const Shape shp = base.shape();
  T* data = base.mutable_data();
  for (const auto& p : parts) {
    const auto g = detail::resolve(p.gen, shp);
    detail::execute_assign(data, shp, g, p.body);
  }
  return base;
}

template <typename T>
Array<T> with_genarray_parts(const Shape& shp,
                             const std::vector<Partition<T>>& parts,
                             T dflt = T{}) {
  Array<T> out(shp, dflt);
  return with_modarray_parts(std::move(out), parts);
}

// Multi-partition modarray whose bodies read the array being modified
// (through the data pointer handed to the body).  Partitions execute in
// order, each seeing the writes of the previous ones.  The caller must
// guarantee that, within one partition, no generator element reads a
// position written by another element of the same partition — the property
// sac2c's reuse analysis proves for border-exchange with-loops, which is
// exactly what this variant exists for.
template <typename T>
struct ReadingPartition {
  Gen gen;
  std::function<T(const IndexVec&, const T*)> body;
};

template <typename T>
Array<T> with_modarray_reading(Array<T> base,
                               const std::vector<ReadingPartition<T>>& parts) {
  const Shape shp = base.shape();
  T* data = base.mutable_data();
  for (const auto& p : parts) {
    const auto g = detail::resolve(p.gen, shp);
    detail::execute_assign(
        data, shp, g,
        [&](const IndexVec& iv) { return p.body(iv, data); });
  }
  return base;
}

}  // namespace sacpp::sac
