#pragma once
// With-loop computation graphs: sac2c's with-loop folding as explicit,
// inspectable rewrite passes.
//
// The template layer (expr.hpp) fuses when the *programmer* composes lazy
// nodes.  This module is the compiler's view of the same optimisation: an
// array computation is built as a small DAG of symbolic operations, an
// optimiser rewrites it — collapsing affine index-remap chains, marking
// element-wise trees and stencil consumers as fused — and an evaluator
// executes the optimised graph with one with-loop per remaining
// materialisation point.  Rewrite statistics (nodes fused, materialisations
// eliminated) are first-class, so tests can assert exactly what the
// optimiser did, and the ablation bench can quantify each pass.
//
// The op algebra is the SAC array library's: element-wise maps/zips,
// coefficient-class stencils, and the affine structural family
// (condense / scatter / take / embed / shift), which is closed under
// composition: every chain collapses to a single
//   source index = (iv * num + pre) / den + offset
// gather — the same transform GatherExpr executes.
//
// Scope note: this is a runtime optimiser over a fixed op algebra, not a
// compiler; it exists to make the paper's folding story testable and
// measurable pass by pass.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sacpp/common/shape.hpp"
#include "sacpp/sac/array.hpp"
#include "sacpp/sac/stencil.hpp"

namespace sacpp::sac::wl {

// ---------------------------------------------------------------------------
// Graph representation
// ---------------------------------------------------------------------------

enum class OpKind {
  kInput,    // named placeholder bound at evaluation time
  kConst,    // broadcast scalar
  kEwise,    // element-wise combination of 1..n children (same shape)
  kStencil,  // coefficient-class relaxation, zero boundary ring
  kGather,   // affine index remap (condense/scatter/take/embed/shift)
};

enum class EwiseFn { kAdd, kSub, kMul, kNeg, kAbs, kScale };

// The affine index transform of a gather node:
//   src = (iv * num + pre) / den + offset;  non-divisible -> default value.
struct AffineMap {
  extent_t num = 1;
  extent_t den = 1;
  extent_t pre = 0;
  IndexVec offset;  // per-axis

  bool is_identity(std::size_t rank) const;
};

class Node;
using NodeRef = std::shared_ptr<const Node>;

class Node {
 public:
  OpKind kind = OpKind::kInput;
  Shape shape;

  // kInput
  std::string name;
  // kConst / kEwise(kScale)
  double value = 0.0;
  // kEwise
  EwiseFn fn = EwiseFn::kAdd;
  // kStencil
  StencilCoeffs coeffs{};
  // kGather
  AffineMap map;
  double dflt = 0.0;

  std::vector<NodeRef> args;

  // Number of nodes in this DAG (shared subgraphs counted once).
  std::size_t node_count() const;
  // Nodes that would materialise an intermediate array under naive
  // (one-with-loop-per-node) evaluation: everything except inputs/consts.
  std::size_t materialisation_count() const;
  // Human-readable one-line structure (for tests and debugging).
  std::string to_string() const;
};

// -- builders -----------------------------------------------------------------

NodeRef input(std::string name, const Shape& shape);
NodeRef constant(const Shape& shape, double value);
NodeRef add(NodeRef a, NodeRef b);
NodeRef sub(NodeRef a, NodeRef b);
NodeRef mul(NodeRef a, NodeRef b);
NodeRef neg(NodeRef a);
NodeRef abs(NodeRef a);
NodeRef scale(NodeRef a, double s);
NodeRef stencil(NodeRef a, const StencilCoeffs& coeffs);
NodeRef condense(extent_t stride, NodeRef a, extent_t phase = 0);
NodeRef scatter(extent_t stride, NodeRef a, extent_t phase = 0);
NodeRef take(const IndexVec& shp, NodeRef a);
NodeRef embed(const IndexVec& shp, const IndexVec& pos, NodeRef a);
NodeRef shift(const IndexVec& offset, NodeRef a);

// ---------------------------------------------------------------------------
// Optimiser
// ---------------------------------------------------------------------------

struct RewriteStats {
  std::uint64_t gathers_collapsed = 0;   // gather∘gather -> gather
  std::uint64_t identities_removed = 0;  // identity gathers dropped
  std::uint64_t ewise_fused = 0;         // ewise trees marked fusible
  std::uint64_t stencils_folded = 0;     // gather/ewise folded over stencils
  std::uint64_t materialisations_before = 0;
  std::uint64_t materialisations_after = 0;
};

// Run the folding passes to a fixed point; `stats` (optional) reports what
// happened.  Passes:
//   1. collapse-gathers:  Gather(Gather(x)) -> Gather(x) (affine closure);
//      identity gathers vanish.
//   2. fuse-ewise:        element-wise trees evaluate in one traversal.
//   3. fold-stencil-consumers: gathers and element-wise ops over a stencil
//      evaluate the stencil per consumed point (profitable because the
//      consumers read each stencil value at most once — the same rule
//      sac2c's with-loop folding applies).
NodeRef optimise(const NodeRef& root, RewriteStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

using Bindings = std::map<std::string, Array<double>>;

// Naive evaluation: one with-loop (one materialised array) per node —
// what the unoptimised program would do.
Array<double> evaluate_naive(const NodeRef& root, const Bindings& bindings);

// Optimised evaluation: materialises only at fusion barriers (stencil
// arguments and the root); fused regions run as one with-loop.  Equal
// values to evaluate_naive for every graph (tests assert this).
Array<double> evaluate(const NodeRef& root, const Bindings& bindings);

}  // namespace sacpp::sac::wl
