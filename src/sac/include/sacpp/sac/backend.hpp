#pragma once
// Pluggable compute backends for the dense-rank-3 row primitives.
//
// Every hot with-loop in the system eventually walks contiguous k-rows of a
// dense rank-3 array: the kPlanes stencil engine (stencil.hpp), the fused
// EwiseBinaryExpr combine (expr.hpp), the gather rows of the grid-transfer
// operators, and the L2/max-abs norm folds (with_loop.hpp).  A Backend is
// one implementation of those row primitives; with_loop/stencil/expr code
// dispatches through the interface instead of open-coding the loops, so a
// vectorized (or later JIT/GPU) engine slots in without touching the array
// system (docs/backends.md).
//
// Semantics contract (what makes cross-backend differential testing work):
//  * Element-parallel primitives — fills, plane sums, stencil combines,
//    ewise combines, copies, gathers, scatters — compute every output
//    element with exactly the scalar reference's association order.  They
//    are bit-identical across ALL backends, any row length, any sub-range.
//  * Row folds (sum_sq_row / max_abs_row) may reassociate — but only into
//    one fixed shape: four independent lane accumulators (element `lo + n`
//    goes to lane `n % 4`) combined in a fixed left-to-right order after
//    the row.  Results differ from kScalar only by rounding (tests pin
//    1e-12), but are identical across every vectorized engine: portable,
//    AVX2, AVX-512 and JIT all perform the same 4-lane arithmetic (none
//    emits FMA; the wider engines keep their folds at 4 lanes), so kSimd
//    and kJit folds are bit-identical across hosts.
//  * Tail handling is masked, never special-cased: a partial final vector
//    processes only the live lanes (folds feed masked lanes the neutral
//    element 0.0, exact for both sum-of-squares and max-abs).  No row
//    length or sub-range may take a different code path that changes
//    results.
//
// Backends are stateless singletons; a const Backend& is safe to use from
// any thread concurrently.

#include <cstddef>

#include "sacpp/common/shape.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::sac {

class Backend {
 public:
  virtual ~Backend() = default;

  // Resolved implementation name ("scalar" | "avx2" | "avx512" | "portable"
  // | "jit") — what the engine actually is, as opposed to
  // backend_name(kind), which names the selection policy.
  virtual const char* name() const noexcept = 0;

  // Vector width the element-parallel row primitives operate at (1 for
  // scalar, 4 for the 4-wide engines, 8 for AVX-512).  Fold lane structure
  // is NOT defined by this: every vectorized engine folds in the fixed
  // 4-lane structure described above, whatever width its element-parallel
  // loops run at, so kSimd fold results stay host-independent.
  virtual unsigned lanes() const noexcept = 0;

  // True for the vectorized engines; drives stats().backend_simd_rows and
  // the row paths that only pay off when rows are vector-processed.
  virtual bool vectorized() const noexcept = 0;

  // True for the runtime code-generation engine (docs/jit.md); lets callers
  // and stats distinguish it from the fixed SIMD engines it falls back to.
  virtual bool jit() const noexcept { return false; }

  // -- element-parallel row primitives (bit-identical across backends) ------

  // out[k] = v for k in [lo, hi).
  virtual void fill_row(double* out, extent_t lo, extent_t hi,
                        double v) const = 0;

  // out[k] = src[k - lo] for k in [lo, hi)  (contiguous copy).
  virtual void copy_row(double* out, const double* src, extent_t lo,
                        extent_t hi) const = 0;

  // The kPlanes partial sums (docs/stencil.md), for k in [0, n):
  //   u1[k] = ((im[k] + ip[k]) + jm[k]) + jp[k]
  //   u2[k] = ((imm[k] + imp[k]) + ipm[k]) + ipp[k]
  virtual void plane_sums(const double* im, const double* ip,
                          const double* jm, const double* jp,
                          const double* imm, const double* imp,
                          const double* ipm, const double* ipp, double* u1,
                          double* u2, extent_t n) const = 0;

  // Per-point stencil combine over a row, for k in [lo, hi):
  //   r(k) = c[0]*uc[k] + c[1]*((u1[k] + uc[k-1]) + uc[k+1])
  //        + c[2]*((u2[k] + u1[k-1]) + u1[k+1]) + c[3]*(u2[k-1] + u2[k+1])
  //   combine_row:    out[k]  = r(k)
  //   accumulate_row: out[k] += r(k)
  // The caller guarantees uc/u1/u2 are readable on [lo-1, hi+1).
  virtual void combine_row(const double* c, const double* uc,
                           const double* u1, const double* u2, double* out,
                           extent_t lo, extent_t hi) const = 0;
  virtual void accumulate_row(const double* c, const double* uc,
                              const double* u1, const double* u2, double* out,
                              extent_t lo, extent_t hi) const = 0;

  // One fused kPlanes output row: the plane_sums over the eight neighbour
  // rows of centre row `uc` followed by the per-point combine (or
  // accumulate) into out[lo, hi) — the exact two-call sequence the planes
  // stencil engine used to issue, exposed as a single primitive so an
  // engine can fuse the two passes (the JIT backend generates one-pass row
  // kernels for it, docs/jit.md).  The default composes this engine's own
  // plane_sums and combine_row/accumulate_row through the caller's u1/u2
  // scratch (each readable on [0, n)); overrides must stay bit-identical to
  // that composition and may leave the scratch untouched.
  virtual void stencil_row(const double* c, const double* uc,
                           const double* im, const double* ip,
                           const double* jm, const double* jp,
                           const double* imm, const double* imp,
                           const double* ipm, const double* ipp, double* u1,
                           double* u2, double* out, extent_t lo, extent_t hi,
                           extent_t n, bool accumulate) const;

  // Fused ewise combines (the EwiseBinaryExpr row pass-through, expr.hpp):
  // for k in [lo, hi), out[k] = a[k] <op> out[k].
  virtual void add_into_row(const double* a, double* out, extent_t lo,
                            extent_t hi) const = 0;
  virtual void sub_into_row(const double* a, double* out, extent_t lo,
                            extent_t hi) const = 0;
  virtual void mul_into_row(const double* a, double* out, extent_t lo,
                            extent_t hi) const = 0;

  // Restriction inner row (lazy_condense over rows): out[t] = src[t*stride]
  // for t in [0, n).
  virtual void gather_row(double* out, const double* src, extent_t stride,
                          extent_t n) const = 0;

  // Prolongation inner row (lazy_scatter over rows): out[t*stride] = src[t]
  // for t in [0, n).  Gap positions are the caller's business (pre-filled
  // with the expression default).
  virtual void scatter_row(double* out, extent_t stride, const double* src,
                           extent_t n) const = 0;

  // -- row folds (reassociate under vectorized backends; see contract) ------

  // Returns acc folded with sum of p[k]^2 over [lo, hi).
  virtual double sum_sq_row(double acc, const double* p, extent_t lo,
                            extent_t hi) const = 0;

  // Returns max(acc, max |p[k]| over [lo, hi)).  acc must be >= 0 (it is a
  // running max-abs, whose neutral element is 0).
  virtual double max_abs_row(double acc, const double* p, extent_t lo,
                             extent_t hi) const = 0;
};

// The engine a BackendKind resolves to on this host: kScalar and
// kSimdPortable are fixed; kSimd picks the widest vector engine the CPU
// supports (AVX-512, then AVX2, then the portable 4-wide engine — checked
// once); kJit is the code-generating engine, which itself falls back to
// the resolved kSimd engine per row until a kernel is compiled.  Always
// returns a live singleton.
const Backend& backend_for(BackendKind kind);

// Whether this process can run the AVX2 / AVX-512 engines (cached CPUID
// probes).  cpu_has_avx512 requires the F+DQ+VL subset the engine uses.
bool cpu_has_avx2() noexcept;
bool cpu_has_avx512() noexcept;

// The backend governing work on the calling thread: resolved from
// active_config().backend, so per-job config snapshots (serve) and
// ScopedConfig/SACPP_BACKEND all flow through it.
inline const Backend& active_backend() noexcept {
  return backend_for(active_config().backend);
}

namespace detail {
// The singleton engines (backend_scalar.cpp / backend_simd.cpp /
// backend_jit.cpp).  Exposed for the differential battery, which pins the
// vector engines against each other bit-for-bit regardless of what kSimd
// resolves to.
const Backend& scalar_backend() noexcept;
const Backend& portable_backend() noexcept;
// nullptr when the CPU lacks the instruction set.
const Backend* avx2_backend() noexcept;
const Backend* avx512_backend() noexcept;
const Backend& jit_backend() noexcept;
}  // namespace detail

}  // namespace sacpp::sac
