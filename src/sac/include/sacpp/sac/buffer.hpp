#pragma once
// Reference-counted, cache-line aligned element buffers.
//
// SAC manages array memory implicitly through reference counting; the
// compiler reuses a buffer in place when its reference count is one.  Buffer
// mirrors that: copying is O(1) (shared ownership), `unique()` exposes the
// reference count, and allocation/release feed the RuntimeStats counters the
// memory-management analysis relies on.
//
// Buffers are intentionally NOT thread-safe for ownership changes; arrays are
// created and retired on the coordinating thread, while worker threads only
// read/write elements (disjoint ranges) during with-loop execution.  In
// checked mode (SacConfig::check) every ownership operation performed while a
// parallel region is active is screened against that contract, and raw
// in-place writes to aliased buffers are recorded for the uniqueness/alias
// checker (src/check).
//
// Exception-safety audit (docs/static_analysis.md §alias checker):
//  * Buffer(count): if Control's allocation throws, the partially constructed
//    Control is freed by the compiler and ctrl_ stays null — the stats
//    counters are only advanced after the allocation succeeded.
//  * copy/move construction and assignment are noexcept; copy assignment
//    retains the source before releasing the old buffer, so self-assignment
//    and assignment between aliases of the same control block are safe even
//    when the left side held the last reference.
//  * release() is idempotent per handle (the pointer is cleared first), so a
//    double destruction through the same handle cannot double-free.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

#include "sacpp/common/error.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/sac/check_events.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/pool.hpp"
#include "sacpp/sac/stats.hpp"

namespace sacpp::sac {

template <typename T>
class Buffer {
 public:
  Buffer() = default;

  explicit Buffer(std::size_t count) {
    if (count == 0) count = 1;  // rank-0 arrays still hold one element
    ctrl_ = new Control(count);
    stats().allocations += 1;
    stats().bytes_allocated += count * sizeof(T);
  }

  Buffer(const Buffer& other) noexcept : ctrl_(other.ctrl_) { retain(); }

  Buffer(Buffer&& other) noexcept : ctrl_(std::exchange(other.ctrl_, nullptr)) {}

  Buffer& operator=(const Buffer& other) noexcept {
    if (this != &other) {
      // Retain before releasing: if both handles alias the same control
      // block, releasing first could free it while `other` still points in.
      Control* taken = other.ctrl_;
      retain_ctrl(taken);
      release();
      ctrl_ = taken;
    }
    return *this;
  }

  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      release();
      ctrl_ = std::exchange(other.ctrl_, nullptr);
    }
    return *this;
  }

  ~Buffer() { release(); }

  bool valid() const noexcept { return ctrl_ != nullptr; }

  T* data() noexcept { return ctrl_ ? ctrl_->elems : nullptr; }
  const T* data() const noexcept { return ctrl_ ? ctrl_->elems : nullptr; }

  std::size_t count() const noexcept { return ctrl_ ? ctrl_->count : 0; }

  // True when this handle is the only owner — the SAC reuse condition.
  bool unique() const noexcept { return ctrl_ && ctrl_->refs == 1; }

  std::uint32_t use_count() const noexcept { return ctrl_ ? ctrl_->refs : 0; }

  // Checked-mode hook for the uniqueness/alias checker: record a raw
  // in-place write that bypassed the copy-on-write path while this buffer
  // was still aliased (SAC's use-after-steal).  Callers guard on
  // active_config().check; see Array::raw_data_unchecked().
  void note_unchecked_write() const noexcept {
    if (ctrl_ && ctrl_->refs > 1) {
      check_detail::record_buffer_event(
          check_detail::BufferEventKind::kSharedInPlaceWrite, ctrl_->refs);
    }
  }

 private:
  struct Control {
    // Allocation goes through the size-class BufferPool when enabled
    // (SacConfig::pool; docs/memory.md) — the V-cycle's recurring shapes are
    // then served from recycled blocks instead of std::aligned_alloc.  The
    // pool flag is re-read at release time: blocks are ordinary aligned
    // allocations either way, so toggling mid-lifetime is safe.
    explicit Control(std::size_t n) : count(n) {
      const std::size_t bytes = pool_block_bytes(n * sizeof(T));
      if (obs::enabled()) [[unlikely]] {
        obs::observe(obs::Hist::kAllocBytes, n * sizeof(T));
      }
      void* raw = nullptr;
      if (active_config().pool) {
        // The pool maintains the stats().pool_hits/misses gauges itself.
        raw = BufferPool::instance().allocate(bytes);
      } else {
        raw = std::aligned_alloc(kBufferAlignment, bytes);
      }
      SACPP_REQUIRE(raw != nullptr, "array buffer allocation failed");
      elems = static_cast<T*>(raw);
      check_detail::note_buffer_alloc();
    }
    ~Control() {
      if (active_config().pool) {
        BufferPool::instance().deallocate(elems,
                                          pool_block_bytes(count * sizeof(T)));
      } else {
        std::free(elems);
      }
      check_detail::note_buffer_free();
    }
    T* elems = nullptr;
    std::size_t count = 0;
    std::uint32_t refs = 1;
  };

  // Ownership mutations funnel through these two so checked mode can screen
  // them against the "workers never touch ownership" contract: while a
  // checked parallel region is active, any retain/release from a thread
  // other than the coordinator is recorded for the race detector.
  static void retain_ctrl(Control* c) noexcept {
    if (!c) return;
    if (check_detail::ownership_watch()) [[unlikely]] {
      check_detail::note_ownership_op(c->refs);
    }
    ++c->refs;
  }

  void retain() noexcept { retain_ctrl(ctrl_); }

  void release() noexcept {
    Control* c = std::exchange(ctrl_, nullptr);
    if (!c) return;
    if (check_detail::ownership_watch()) [[unlikely]] {
      check_detail::note_ownership_op(c->refs);
    }
    if (--c->refs == 0) {
      stats().releases += 1;
      delete c;
    }
  }

  Control* ctrl_ = nullptr;
};

}  // namespace sacpp::sac
