#pragma once
// Reference-counted, cache-line aligned element buffers.
//
// SAC manages array memory implicitly through reference counting; the
// compiler reuses a buffer in place when its reference count is one.  Buffer
// mirrors that: copying is O(1) (shared ownership), `unique()` exposes the
// reference count, and allocation/release feed the RuntimeStats counters the
// memory-management analysis relies on.
//
// Buffers are intentionally NOT thread-safe for ownership changes; arrays are
// created and retired on the coordinating thread, while worker threads only
// read/write elements (disjoint ranges) during with-loop execution.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

#include "sacpp/common/error.hpp"
#include "sacpp/sac/stats.hpp"

namespace sacpp::sac {

inline constexpr std::size_t kBufferAlignment = 64;  // one cache line

template <typename T>
class Buffer {
 public:
  Buffer() = default;

  explicit Buffer(std::size_t count) {
    if (count == 0) count = 1;  // rank-0 arrays still hold one element
    ctrl_ = new Control(count);
    stats().allocations += 1;
    stats().bytes_allocated += count * sizeof(T);
  }

  Buffer(const Buffer& other) noexcept : ctrl_(other.ctrl_) { retain(); }

  Buffer(Buffer&& other) noexcept : ctrl_(std::exchange(other.ctrl_, nullptr)) {}

  Buffer& operator=(const Buffer& other) noexcept {
    if (this != &other) {
      release();
      ctrl_ = other.ctrl_;
      retain();
    }
    return *this;
  }

  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      release();
      ctrl_ = std::exchange(other.ctrl_, nullptr);
    }
    return *this;
  }

  ~Buffer() { release(); }

  bool valid() const noexcept { return ctrl_ != nullptr; }

  T* data() noexcept { return ctrl_ ? ctrl_->elems : nullptr; }
  const T* data() const noexcept { return ctrl_ ? ctrl_->elems : nullptr; }

  std::size_t count() const noexcept { return ctrl_ ? ctrl_->count : 0; }

  // True when this handle is the only owner — the SAC reuse condition.
  bool unique() const noexcept { return ctrl_ && ctrl_->refs == 1; }

  std::uint32_t use_count() const noexcept { return ctrl_ ? ctrl_->refs : 0; }

 private:
  struct Control {
    explicit Control(std::size_t n) : count(n) {
      void* raw = std::aligned_alloc(
          kBufferAlignment,
          ((n * sizeof(T) + kBufferAlignment - 1) / kBufferAlignment) *
              kBufferAlignment);
      SACPP_REQUIRE(raw != nullptr, "array buffer allocation failed");
      elems = static_cast<T*>(raw);
    }
    ~Control() { std::free(elems); }
    T* elems = nullptr;
    std::size_t count = 0;
    std::uint32_t refs = 1;
  };

  void retain() noexcept {
    if (ctrl_) ++ctrl_->refs;
  }

  void release() noexcept {
    if (ctrl_ && --ctrl_->refs == 0) delete ctrl_;
    ctrl_ = nullptr;
  }

  Control* ctrl_ = nullptr;
};

}  // namespace sacpp::sac
