#pragma once
// Direct periodic relaxation — the paper's first future-work item (Sec. 7):
//
//   "A direct implementation of relaxation with periodic boundary
//    conditions that makes artificial boundary elements obsolete is most
//    desirable.  On the one hand, it saves the overhead associated with
//    updating these additional elements.  On the other hand, it allows for
//    a benchmark implementation that is even closer to the mathematical
//    specification."
//
// PeriodicStencilExpr applies a coefficient-class stencil to an array
// WITHOUT ghost layers: neighbour indices wrap around modulo the extent.
// Evaluation is split the way a compiler would split the with-loop: points
// whose full neighbourhood is in bounds use the unrolled direct evaluator;
// only the O(n^(rank-1)) boundary points pay for modular arithmetic.
//
// The expression participates in with-loop folding exactly like
// StencilExpr (it satisfies ArrayExpr / Rank3Expr).

#include <algorithm>
#include <array>

#include "sacpp/common/error.hpp"
#include "sacpp/common/shape.hpp"
#include "sacpp/sac/array.hpp"
#include "sacpp/sac/stencil.hpp"
#include "sacpp/sac/with_loop.hpp"

namespace sacpp::sac {

class PeriodicStencilExpr {
 public:
  PeriodicStencilExpr(Array<double> a, const StencilCoeffs& coeffs,
                      StencilMode mode = active_config().stencil_mode)
      : a_(std::move(a)), c_(coeffs), mode_(mode), be_(&active_backend()) {
    const Shape& shp = a_.shape();
    SACPP_REQUIRE(shp.rank() >= 1, "stencil needs rank >= 1");
    extent_t min_extent = shp.extent(0);
    for (std::size_t d = 0; d < shp.rank(); ++d) {
      SACPP_REQUIRE(shp.extent(d) >= 2,
                    "periodic stencil needs extent >= 2 per dimension");
      min_extent = std::min(min_extent, shp.extent(d));
    }
    if (shp.rank() == 3) {
      s0_ = shp.extent(1) * shp.extent(2);
      s1_ = shp.extent(2);
      planes_rows_ = mode_ == StencilMode::kPlanes &&
                     min_extent >= active_config().stencil_planes_cutover;
    }
  }

  const Shape& shape() const { return a_.shape(); }
  const Array<double>& argument() const { return a_; }
  StencilMode mode() const { return mode_; }

  double operator()(const IndexVec& iv) const {
    const Shape& shp = a_.shape();
    if (shp.rank() == 3) return (*this)(iv[0], iv[1], iv[2]);
    return wrapped_generic(iv);
  }

  double operator()(extent_t i, extent_t j, extent_t k) const {
    const Shape& shp = a_.shape();
    const extent_t n0 = shp.extent(0), n1 = shp.extent(1),
                   n2 = shp.extent(2);
    if (i >= 1 && i < n0 - 1 && j >= 1 && j < n1 - 1 && k >= 1 &&
        k < n2 - 1) {
      return direct3((i * n1 + j) * n2 + k);
    }
    return wrapped3(i, j, k);
  }

  // -- kPlanes row-fill protocol (detail::RowFillBody) ------------------------
  //
  // Unlike the fixed-boundary StencilExpr, the factorised form here covers
  // EVERY output row: the nine source rows are taken with their i/j
  // coordinates wrapped, so the boundary ring needs no per-point modular
  // fallback, and only the first/last k positions pay a wrapped combine.

  bool row_fill_enabled() const { return planes_rows_; }

  PlaneScratch make_row_state() const {
    return PlaneScratch(a_.shape().extent(2));
  }

  void fill_row(PlaneScratch& st, extent_t i, extent_t j, double* out,
                extent_t k_lo, extent_t k_hi) const {
    const Shape& shp = a_.shape();
    const extent_t n0 = shp[0], n1 = shp[1], n2 = shp[2];
    const extent_t iw = (i + n0 - 1) % n0, ie = (i + 1) % n0;
    const extent_t jw = (j + n1 - 1) % n1, je = (j + 1) % n1;
    const double* base = a_.data();
    auto row = [&](extent_t x, extent_t y) {
      return base + x * s0_ + y * s1_;
    };
    // Reads only — overlapping pointers on extent-2 axes stay legal inside
    // the backend's plane kernel.
    be_->plane_sums(row(iw, j), row(ie, j), row(i, jw), row(i, je),
                    row(iw, jw), row(iw, je), row(ie, jw), row(ie, je),
                    st.u1(), st.u2(), n2);
    const double* uc = row(i, j);
    const double* u1 = st.u1();
    const double* u2 = st.u2();
    double* o = out;
    auto combine = [&](extent_t k, extent_t km, extent_t kp) {
      o[k] = c_[0] * uc[k] + c_[1] * ((u1[k] + uc[km]) + uc[kp]) +
             c_[2] * ((u2[k] + u1[km]) + u1[kp]) +
             c_[3] * (u2[km] + u2[kp]);
    };
    if (k_lo == 0) combine(0, n2 - 1, 1 % n2);
    // Interior points use the backend row combine; only the wrapped first
    // and last k pay the modular lookup above/below.
    be_->combine_row(c_.c.data(), uc, u1, u2, o,
                     std::max<extent_t>(k_lo, 1),
                     std::min<extent_t>(k_hi, n2 - 1));
    if (k_hi == n2 && n2 >= 2) combine(n2 - 1, n2 - 2, 0);
    st.rows += 1;
  }

 private:
  // Interior: identical arithmetic (and association order) to
  // StencilExpr::at_linear3 so the two formulations agree bitwise there.
  double direct3(extent_t centre) const {
    const double* c = a_.data() + centre;
    const double* im = c - s0_;
    const double* ip = c + s0_;
    const double* jm = c - s1_;
    const double* jp = c + s1_;
    const double* imm = im - s1_;
    const double* imp = im + s1_;
    const double* ipm = ip - s1_;
    const double* ipp = ip + s1_;
    const double faces = im[0] + ip[0] + jm[0] + jp[0] + c[-1] + c[1];
    const double edges = imm[0] + imp[0] + ipm[0] + ipp[0] + im[-1] + im[1] +
                         ip[-1] + ip[1] + jm[-1] + jm[1] + jp[-1] + jp[1];
    const double corners = imm[-1] + imm[1] + imp[-1] + imp[1] + ipm[-1] +
                           ipm[1] + ipp[-1] + ipp[1];
    return c_[0] * c[0] + c_[1] * faces + c_[2] * edges + c_[3] * corners;
  }

  // Boundary points: neighbour coordinates wrap modulo the extent.  Sums
  // are grouped per class in the same order as the direct evaluator.
  double wrapped3(extent_t i, extent_t j, extent_t k) const {
    const Shape& shp = a_.shape();
    const extent_t n0 = shp.extent(0), n1 = shp.extent(1),
                   n2 = shp.extent(2);
    const extent_t im = (i + n0 - 1) % n0, ip = (i + 1) % n0;
    const extent_t jm = (j + n1 - 1) % n1, jp = (j + 1) % n1;
    const extent_t km = (k + n2 - 1) % n2, kp = (k + 1) % n2;
    const double* p = a_.data();
    auto at = [&](extent_t x, extent_t y, extent_t z) {
      return p[(x * n1 + y) * n2 + z];
    };
    const double faces = at(im, j, k) + at(ip, j, k) + at(i, jm, k) +
                         at(i, jp, k) + at(i, j, km) + at(i, j, kp);
    const double edges = at(im, jm, k) + at(im, jp, k) + at(ip, jm, k) +
                         at(ip, jp, k) + at(im, j, km) + at(im, j, kp) +
                         at(ip, j, km) + at(ip, j, kp) + at(i, jm, km) +
                         at(i, jm, kp) + at(i, jp, km) + at(i, jp, kp);
    const double corners = at(im, jm, km) + at(im, jm, kp) + at(im, jp, km) +
                           at(im, jp, kp) + at(ip, jm, km) + at(ip, jm, kp) +
                           at(ip, jp, km) + at(ip, jp, kp);
    return c_[0] * at(i, j, k) + c_[1] * faces + c_[2] * edges +
           c_[3] * corners;
  }

  // Any-rank fallback via the cached offset table, wrapping per axis.
  double wrapped_generic(const IndexVec& iv) const {
    const Shape& shp = a_.shape();
    std::array<double, 4> sums{};
    IndexVec src(iv.size());
    for (const auto& e : StencilTable::for_rank(shp.rank()).entries()) {
      for (std::size_t d = 0; d < iv.size(); ++d) {
        const extent_t n = shp.extent(d);
        src[d] = (iv[d] + e.offset[d] + n) % n;
      }
      sums[static_cast<std::size_t>(e.cls)] += a_[src];
    }
    double acc = 0.0;
    for (std::size_t cls = 0; cls < 4; ++cls) acc += c_[cls] * sums[cls];
    return acc;
  }

  Array<double> a_;
  StencilCoeffs c_;
  StencilMode mode_;
  const Backend* be_;  // row-primitive engine, snapshotted at construction
  extent_t s0_ = 0;
  extent_t s1_ = 0;
  bool planes_rows_ = false;  // kPlanes row path active (rank 3, >= cutover)
};

// Eager form: one with-loop over the whole (ghost-free) grid.  The default
// mode is the process-wide SacConfig::stencil_mode (evaluated per call).
Array<double> relax_kernel_periodic(const Array<double>& a,
                                    const StencilCoeffs& coeffs,
                                    StencilMode mode = active_config().stencil_mode);

}  // namespace sacpp::sac
