#pragma once
// Runtime configuration of the SAC-style array system.
//
// sac2c applies its optimisations (with-loop folding, reference-counting
// memory reuse, with-loop scalarisation / index-vector elimination, implicit
// multithreading) at compile time.  In this embedded reproduction they are
// runtime-selectable strategies so that the ablation benchmarks (DESIGN.md
// D1-D4) can quantify each one's contribution.

#include <cstdint>
#include <string>

namespace sacpp::sac {

// Stencil evaluation strategy (stencil.hpp; docs/stencil.md).  Lives here —
// not in stencil.hpp — so SacConfig can carry the process-wide default
// without a circular include.
//  * kGrouped — sum the neighbours of each coefficient class first, then one
//    multiplication per class (4 mults / 26 adds for rank 3); sac2c reaches
//    this form implicitly, and it is our default.
//  * kNaive — one multiply-add per stencil point (27 mults / 26 adds).
//  * kPlanes — the NPB Fortran hand optimisation: per-class row partial sums
//    shared between neighbouring output points (4 mults / ~16 adds with
//    reuse).  Falls back to kGrouped per-point evaluation on grids below
//    SacConfig::stencil_planes_cutover.
enum class StencilMode { kGrouped, kNaive, kPlanes };

// Canonical names used by SACPP_STENCIL_MODE / --stencil-mode / BENCH_mg.
const char* stencil_mode_name(StencilMode mode);

// Compute backend for the dense-rank-3 row primitives (backend.hpp;
// docs/backends.md).  Lives here — not in backend.hpp — so SacConfig can
// carry the process-wide default without a circular include.
//  * kScalar — today's element-at-a-time row loops, refactored behind the
//    Backend interface; the bit-exact reference every other backend is
//    pinned against.
//  * kSimd — the vectorized row engine: AVX2 when the CPU has it (runtime
//    CPUID dispatch), otherwise a 4-wide portable fallback that performs the
//    same lane-structured arithmetic, so kSimd results are bit-identical
//    across hosts.
//  * kSimdPortable — the 4-wide portable fallback unconditionally, even on
//    AVX2 hardware.  Exists so CI can exercise the no-AVX2 path everywhere
//    and so the differential battery can pin AVX2 against it bit-for-bit.
//  * kJit — the runtime code-generation engine (docs/jit.md): row work is
//    captured as a small expression IR, lowered to C++ specialised on the
//    (coefficients, row length) pair, compiled with the host toolchain into
//    a shared object and dlopen'd.  Rows whose kernel is still compiling —
//    or whose compile failed because the host has no usable compiler — run
//    on the kSimd engine; results are bit-identical either way.
enum class BackendKind { kScalar, kSimd, kSimdPortable, kJit };

// Canonical names used by SACPP_BACKEND / --backend / BENCH_mg:
// "scalar" | "simd" | "simd-portable" | "jit".
const char* backend_name(BackendKind kind);

// The backend registry: every selectable kind, in wire-byte order (the
// serve protocol encodes BackendKind as this index).  CLI help text and
// error messages enumerate this instead of hard-coding names, so a new
// engine appears everywhere at once.
inline constexpr BackendKind kAllBackendKinds[] = {
    BackendKind::kScalar, BackendKind::kSimd, BackendKind::kSimdPortable,
    BackendKind::kJit};

// The canonical names of every registered backend joined with `sep`:
// backend_names() == "scalar | simd | simd-portable | jit".
std::string backend_names(const char* sep = " | ");

struct SacConfig {
  // D1: with-loop folding.  When true, the high-level MG code composes lazy
  // array expressions that fuse into a single traversal; when false every
  // array-library operation materialises its result.
  bool folding = true;

  // D2: uniqueness-based in-place reuse.  When true, modarray and
  // element-wise updates steal the argument buffer if its reference count is
  // one (SAC's reference-counting reuse); when false every operation
  // allocates a fresh buffer.
  bool reuse = true;

  // D3: rank specialisation.  When true, dense rank-3 with-loops run through
  // an unrolled triple loop nest (modelling with-loop scalarisation and
  // index-vector elimination); when false everything goes through the
  // rank-generic odometer walker.
  bool specialize = true;

  // Implicit multithreading (SAC's MT backend).
  bool mt_enabled = false;

  // Number of worker threads when mt_enabled (0 = hardware concurrency).
  unsigned mt_threads = 0;

  // D4: sequential small-grid threshold: with-loops over fewer elements than
  // this run sequentially even when mt_enabled (the paper's
  // bottom-of-the-V-cycle analysis).
  std::int64_t mt_threshold = 4096;

  // sacpp_check verification passes (src/check): when true the array system
  // records buffer-ownership and parallel-region events for the runtime
  // checkers (docs/static_analysis.md).  Off the hot path when false: every
  // recording site is a single predictable branch.  The initial value comes
  // from the SACPP_CHECK environment variable.
  bool check = false;

  // Unified runtime telemetry (sacpp_obs; docs/observability.md): when true
  // the array system, thread pool, buffer pool, MG solvers and msg record
  // spans into per-thread ring buffers plus duration/size histograms, and
  // parallel regions feed the per-level busy/idle/imbalance aggregates.  Off
  // the hot path when false: every instrumentation point is one relaxed
  // atomic load and a predictable branch.  The canonical flag lives in
  // obs::set_enabled; this field mirrors it so ScopedConfig can save and
  // restore it — mutate it through set_obs() (or ScopedConfig), not by
  // direct field assignment.  The initial value comes from SACPP_OBS.
  bool obs = false;

  // Pooled buffer allocator (docs/memory.md): when true Buffer<T> serves
  // allocations from the size-class BufferPool instead of calling
  // std::aligned_alloc/std::free each time — the paper's Sec. 5/6
  // memory-management overhead on the small grids at the bottom of the
  // V-cycle.  Toggleable at any time (pool blocks are ordinary aligned
  // allocations).  SACPP_POOL=0 disables it at startup.
  bool pool = true;

  // Stencil evaluation strategy used when a call site does not pick one
  // explicitly (docs/stencil.md).  kGrouped keeps the historical association
  // order, so goldens and the frozen machine-model calibration are
  // unaffected unless kPlanes is opted into via SACPP_STENCIL_MODE=planes
  // or npb_mg --stencil-mode=planes.
  StencilMode stencil_mode = StencilMode::kGrouped;

  // Small-grid cutover for kPlanes: grids whose smallest extent is below
  // this fall back to kGrouped per-point evaluation — at the bottom of the
  // V-cycle the row scratch setup costs more than the additions it saves
  // (the same small-grid economics as mt_threshold / the pool's role on
  // small levels, docs/memory.md).  The MG level ladder is 4, 6, 10, 18,
  // 34, 66, ...; 18 keeps the two coarsest meaningful levels on kGrouped.
  std::int64_t stencil_planes_cutover = 18;

  // Compute backend for the dense-rank-3 row primitives (docs/backends.md).
  // kScalar keeps the historical element order everywhere, so goldens are
  // unaffected unless kSimd is opted into via SACPP_BACKEND=simd or
  // npb_mg --backend=simd.  Element-parallel rows (fills, stencil plane
  // sums/combines, gathers) are bit-identical across backends; only the
  // row folds (L2 / max-abs norms) reassociate, in a fixed lane order.
  BackendKind backend = BackendKind::kScalar;
};

// Process-global configuration used by all with-loop executions.
SacConfig& config();

namespace detail {
// Per-thread configuration override (see ConfigBinding).  Read on every hot
// path through active_config(); nullptr means "use the process global".
extern thread_local const SacConfig* tl_config;
}  // namespace detail

// The configuration governing work on the calling thread: the thread's bound
// per-job snapshot when one is installed, the process global otherwise.
// Every optimisation/strategy decision in the array system reads this — not
// config() directly — so concurrent solves with different knobs (stencil
// mode, pool, MT) cannot bleed into each other (docs/serve.md).  The MT
// runtime propagates the coordinator's binding to its workers for the
// duration of each parallel region.
inline const SacConfig& active_config() noexcept {
  const SacConfig* bound = detail::tl_config;
  return bound != nullptr ? *bound : config();
}

// RAII: bind a per-job configuration snapshot to the calling thread.  The
// snapshot must outlive the binding (the serve executors keep it in the job
// frame).  Bindings nest; destruction restores the previous binding.  Unlike
// ScopedConfig this touches no global state, so any number of threads can
// hold different bindings concurrently.
class ConfigBinding {
 public:
  explicit ConfigBinding(const SacConfig* cfg) noexcept
      : prev_(detail::tl_config) {
    detail::tl_config = cfg;
  }
  ~ConfigBinding() { detail::tl_config = prev_; }
  ConfigBinding(const ConfigBinding&) = delete;
  ConfigBinding& operator=(const ConfigBinding&) = delete;

 private:
  const SacConfig* prev_;
};

// The configuration a fresh process starts from: defaults plus environment
// overrides (SACPP_CHECK=1 enables the verification passes, SACPP_POOL=0/1
// disables/enables the pooled allocator, SACPP_OBS=1 enables telemetry,
// SACPP_STENCIL_MODE=grouped|naive|planes selects the stencil strategy).
// Exposed so tests can exercise the environment parsing directly.
SacConfig config_from_env();

// Parse a stencil mode name ("grouped" | "naive" | "planes").  Returns false
// (leaving `out` untouched) on anything else.
bool parse_stencil_mode(const char* name, StencilMode* out);

// Parse a backend name (any entry of backend_names()).  Returns false
// (leaving `out` untouched) on anything else.
bool parse_backend(const char* name, BackendKind* out);

// Toggle telemetry recording: sets both SacConfig::obs and the obs layer's
// own flag (the one instrumentation points actually test).
void set_obs(bool on);

// RAII override of the global configuration (restores on destruction).
// Used by tests and ablation benches to run the same code under different
// optimisation settings.
class ScopedConfig {
 public:
  explicit ScopedConfig(const SacConfig& cfg);
  ~ScopedConfig();
  ScopedConfig(const ScopedConfig&) = delete;
  ScopedConfig& operator=(const ScopedConfig&) = delete;

 private:
  SacConfig saved_;
};

}  // namespace sacpp::sac
