#pragma once
// Runtime configuration of the SAC-style array system.
//
// sac2c applies its optimisations (with-loop folding, reference-counting
// memory reuse, with-loop scalarisation / index-vector elimination, implicit
// multithreading) at compile time.  In this embedded reproduction they are
// runtime-selectable strategies so that the ablation benchmarks (DESIGN.md
// D1-D4) can quantify each one's contribution.

#include <cstdint>

namespace sacpp::sac {

struct SacConfig {
  // D1: with-loop folding.  When true, the high-level MG code composes lazy
  // array expressions that fuse into a single traversal; when false every
  // array-library operation materialises its result.
  bool folding = true;

  // D2: uniqueness-based in-place reuse.  When true, modarray and
  // element-wise updates steal the argument buffer if its reference count is
  // one (SAC's reference-counting reuse); when false every operation
  // allocates a fresh buffer.
  bool reuse = true;

  // D3: rank specialisation.  When true, dense rank-3 with-loops run through
  // an unrolled triple loop nest (modelling with-loop scalarisation and
  // index-vector elimination); when false everything goes through the
  // rank-generic odometer walker.
  bool specialize = true;

  // Implicit multithreading (SAC's MT backend).
  bool mt_enabled = false;

  // Number of worker threads when mt_enabled (0 = hardware concurrency).
  unsigned mt_threads = 0;

  // D4: sequential small-grid threshold: with-loops over fewer elements than
  // this run sequentially even when mt_enabled (the paper's
  // bottom-of-the-V-cycle analysis).
  std::int64_t mt_threshold = 4096;

  // sacpp_check verification passes (src/check): when true the array system
  // records buffer-ownership and parallel-region events for the runtime
  // checkers (docs/static_analysis.md).  Off the hot path when false: every
  // recording site is a single predictable branch.  The initial value comes
  // from the SACPP_CHECK environment variable.
  bool check = false;

  // Unified runtime telemetry (sacpp_obs; docs/observability.md): when true
  // the array system, thread pool, buffer pool, MG solvers and msg record
  // spans into per-thread ring buffers plus duration/size histograms, and
  // parallel regions feed the per-level busy/idle/imbalance aggregates.  Off
  // the hot path when false: every instrumentation point is one relaxed
  // atomic load and a predictable branch.  The canonical flag lives in
  // obs::set_enabled; this field mirrors it so ScopedConfig can save and
  // restore it — mutate it through set_obs() (or ScopedConfig), not by
  // direct field assignment.  The initial value comes from SACPP_OBS.
  bool obs = false;

  // Pooled buffer allocator (docs/memory.md): when true Buffer<T> serves
  // allocations from the size-class BufferPool instead of calling
  // std::aligned_alloc/std::free each time — the paper's Sec. 5/6
  // memory-management overhead on the small grids at the bottom of the
  // V-cycle.  Toggleable at any time (pool blocks are ordinary aligned
  // allocations).  SACPP_POOL=0 disables it at startup.
  bool pool = true;
};

// Process-global configuration used by all with-loop executions.
SacConfig& config();

// The configuration a fresh process starts from: defaults plus environment
// overrides (SACPP_CHECK=1 enables the verification passes, SACPP_POOL=0/1
// disables/enables the pooled allocator, SACPP_OBS=1 enables telemetry).
// Exposed so tests can exercise the environment parsing directly.
SacConfig config_from_env();

// Toggle telemetry recording: sets both SacConfig::obs and the obs layer's
// own flag (the one instrumentation points actually test).
void set_obs(bool on);

// RAII override of the global configuration (restores on destruction).
// Used by tests and ablation benches to run the same code under different
// optimisation settings.
class ScopedConfig {
 public:
  explicit ScopedConfig(const SacConfig& cfg);
  ~ScopedConfig();
  ScopedConfig(const ScopedConfig&) = delete;
  ScopedConfig& operator=(const ScopedConfig&) = delete;

 private:
  SacConfig saved_;
};

}  // namespace sacpp::sac
