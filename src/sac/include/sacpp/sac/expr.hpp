#pragma once
// Lazy array expressions: WITH-loop folding (DESIGN.md D1).
//
// sac2c's with-loop folding fuses chains of with-loops so intermediate
// arrays are never materialised; `condense(2, RelaxKernel(r, P))` evaluates
// the stencil only at the condensed points.  Here the same fusion is
// expressed with expression templates: array-library operations build
// expression nodes (shape + element function), composition composes the
// element functions, and `force()` runs exactly one with-loop.
//
// Expression nodes hold their child arrays by value — an O(1) ref-counted
// copy — so expressions can safely outlive the names they were built from.
//
// Like the compiler optimisation, folding has a profitability constraint:
// a stencil reads 3^rank neighbours, so folding a stencil over another
// unmaterialised stencil would multiply work.  The API mirrors sac2c's
// heuristic by allowing StencilExpr only over concrete arrays.

#include <algorithm>
#include <concepts>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sacpp/common/shape.hpp"
#include "sacpp/sac/array.hpp"
#include "sacpp/sac/backend.hpp"
#include "sacpp/sac/with_loop.hpp"

namespace sacpp::sac {

namespace detail {

// Signed floor/ceil division (b > 0) for the gather row-range algebra.
inline extent_t floor_div(extent_t a, extent_t b) {
  const extent_t q = a / b;
  return (a % b != 0 && a < 0) ? q - 1 : q;
}
inline extent_t ceil_div(extent_t a, extent_t b) {
  return -floor_div(-a, b);
}

}  // namespace detail

// Anything with a shape and an element function over index vectors.
template <typename E>
concept ArrayExpr = requires(const E& e, const IndexVec& iv) {
  { e.shape() } -> std::convertible_to<Shape>;
  { e(iv) };
};

// Expressions additionally offering unpacked rank-3 access get the
// specialised execution path when forced.
template <typename E>
concept Rank3Expr = ArrayExpr<E> && requires(const E& e, extent_t i) {
  { e(i, i, i) };
};

template <typename E>
using expr_value_t = std::remove_cvref_t<decltype(std::declval<const E&>()(
    std::declval<const IndexVec&>()))>;

// ---------------------------------------------------------------------------
// Nodes
// ---------------------------------------------------------------------------

// Element-wise combination of two equally shaped expressions.
template <typename L, typename R, typename Op>
struct EwiseBinaryExpr {
  L lhs;
  R rhs;
  Op op;

  const Shape& shape() const { return lhs.shape(); }

  auto operator()(const IndexVec& iv) const { return op(lhs(iv), rhs(iv)); }

  auto operator()(extent_t i, extent_t j, extent_t k) const
    requires(Rank3Expr<L> && Rank3Expr<R>)
  {
    return op(lhs(i, j, k), rhs(i, j, k));
  }

  // Row-fill pass-through (detail::RowFillBody): when the right side offers
  // the kPlanes row path (a stencil over a concrete array — the only shape
  // the folding heuristic allows), the fused with-loop still lands on it.
  // The rhs row goes into the output row first, then the combine reads it
  // back per point — safe because force()/genarray materialise into a fresh
  // buffer, so the output row cannot alias either operand.
  bool row_fill_enabled() const
    requires(Rank3Expr<L> && detail::RowFillBody<R, double>)
  {
    return rhs.row_fill_enabled();
  }

  auto make_row_state() const
    requires(Rank3Expr<L> && detail::RowFillBody<R, double>)
  {
    return rhs.make_row_state();
  }

  template <typename State>
  void fill_row(State& st, extent_t i, extent_t j, double* out,
                extent_t k_lo, extent_t k_hi) const
    requires(Rank3Expr<L> && detail::RowFillBody<R, double>)
  {
    rhs.fill_row(st, i, j, out, k_lo, k_hi);
    // The combine is element-parallel with identical arithmetic per point,
    // so dispatching it through the backend row primitive is bit-identical
    // for every backend — no golden impact, full-width SIMD under kSimd.
    if constexpr (std::is_same_v<L, Array<double>> &&
                  (std::is_same_v<Op, std::plus<>> ||
                   std::is_same_v<Op, std::minus<>> ||
                   std::is_same_v<Op, std::multiplies<>>)) {
      const Shape& ls = lhs.shape();
      const double* a = lhs.data() + (i * ls[1] + j) * ls[2];
      const Backend& be = active_backend();
      if constexpr (std::is_same_v<Op, std::plus<>>) {
        be.add_into_row(a, out, k_lo, k_hi);
      } else if constexpr (std::is_same_v<Op, std::minus<>>) {
        be.sub_into_row(a, out, k_lo, k_hi);
      } else {
        be.mul_into_row(a, out, k_lo, k_hi);
      }
    } else {
      for (extent_t k = k_lo; k < k_hi; ++k) {
        out[k] = op(lhs(i, j, k), out[k]);
      }
    }
  }
};

// Element-wise transformation of one expression.
template <typename E, typename Op>
struct EwiseUnaryExpr {
  E inner;
  Op op;

  const Shape& shape() const { return inner.shape(); }

  auto operator()(const IndexVec& iv) const { return op(inner(iv)); }

  auto operator()(extent_t i, extent_t j, extent_t k) const
    requires Rank3Expr<E>
  {
    return op(inner(i, j, k));
  }
};

// Expression broadcasting one scalar over a shape.
template <typename T>
struct ScalarExpr {
  Shape shp;
  T value;

  const Shape& shape() const { return shp; }
  T operator()(const IndexVec&) const { return value; }
  T operator()(extent_t, extent_t, extent_t) const { return value; }
};

// Index-remapped view: result[iv] = inner(map(iv)) where `map` is the
// affine index transform (iv * scale_num + pre) / scale_den + offset, with
// non-divisible positions ("scatter gaps") and elements mapped outside the
// source defaulting to `dflt`.  This one node fuses condense, scatter,
// take, embed and shift — also their phase-shifted forms on ghost-free
// grids — and any composition of them.
template <typename E>
struct GatherExpr {
  using T = expr_value_t<E>;

  E inner;
  Shape shp;            // result shape
  extent_t scale_num;   // see the transform above
  extent_t scale_den;   //   (per-axis uniform, matching the SAC library ops)
  extent_t pre;         // added before dividing (sampling phase)
  IndexVec offset;
  T dflt;

  const Shape& shape() const { return shp; }

  T operator()(const IndexVec& iv) const {
    IndexVec src(iv.size());
    for (std::size_t d = 0; d < iv.size(); ++d) {
      const extent_t scaled = iv[d] * scale_num + pre;
      if (scale_den != 1 && (scaled % scale_den != 0 || scaled < 0)) {
        return dflt;  // scatter gap
      }
      src[d] = scaled / scale_den + offset[d];
    }
    if (!inner.shape().contains(src)) return dflt;
    return inner(src);
  }

  T operator()(extent_t i, extent_t j, extent_t k) const
    requires Rank3Expr<E>
  {
    extent_t s[3] = {i * scale_num + pre, j * scale_num + pre,
                     k * scale_num + pre};
    if (scale_den != 1) {
      if (s[0] % scale_den || s[1] % scale_den || s[2] % scale_den ||
          s[0] < 0 || s[1] < 0 || s[2] < 0)
        return dflt;
      s[0] /= scale_den;
      s[1] /= scale_den;
      s[2] /= scale_den;
    }
    s[0] += offset[0];
    s[1] += offset[1];
    s[2] += offset[2];
    const Shape& ish = inner.shape();
    if (s[0] < 0 || s[0] >= ish[0] || s[1] < 0 || s[1] >= ish[1] ||
        s[2] < 0 || s[2] >= ish[2])
      return dflt;
    return inner(s[0], s[1], s[2]);
  }

  // -- backend row-fill protocol (detail::RowFillBody) ------------------------
  //
  // The affine transform is separable, so a whole output row maps to one
  // source row plus a k-range algebra: a contiguous copy (take/embed/shift),
  // a strided gather (condense), or a strided scatter into a default-filled
  // row (scatter).  Two inner forms participate:
  //
  //  (a) inner is a concrete Array<double> — pure data movement, bitwise
  //      identical to per-point evaluation, enabled for every backend;
  //  (b) inner itself offers the row protocol (a stencil, or another
  //      gather) — the inner row is produced first (directly into `out`
  //      when the k transform is the identity, else into a scratch row) and
  //      then gathered/scattered.  This swaps the stencil's per-point
  //      evaluator for its row combine, so it is gated on a vectorized
  //      backend to keep the pinned scalar goldens untouched.
  //
  // Builders only produce scale_num == 1 or scale_den == 1; mixed ratios
  // fall back to per-point evaluation via row_fill_enabled() == false.

  static constexpr bool kRowInnerArray = std::is_same_v<E, Array<double>>;

  bool row_fill_enabled() const
    requires(kRowInnerArray)
  {
    return shp.rank() == 3 && (scale_num == 1 || scale_den == 1);
  }

  bool row_fill_enabled() const
    requires(!kRowInnerArray && detail::RowFillBody<E, double>)
  {
    return shp.rank() == 3 && (scale_num == 1 || scale_den == 1) &&
           active_backend().vectorized() && inner.row_fill_enabled();
  }

  int make_row_state() const
    requires(kRowInnerArray)
  {
    return 0;  // stateless: gathers from the concrete array need no scratch
  }

  auto make_row_state() const
    requires(!kRowInnerArray && detail::RowFillBody<E, double>)
  {
    using InnerState = decltype(inner.make_row_state());
    struct State {
      InnerState st;
      std::vector<double> row;  // scratch for non-identity k transforms
    };
    return State{inner.make_row_state(),
                 std::vector<double>(
                     static_cast<std::size_t>(inner.shape().extent(2)))};
  }

  template <typename State>
  void fill_row(State& st, extent_t i, extent_t j, double* out,
                extent_t k_lo, extent_t k_hi) const
    requires((kRowInnerArray || detail::RowFillBody<E, double>) &&
             std::same_as<T, double>)
  {
    const Backend& be = active_backend();
    const Shape& ish = inner.shape();
    // Axes 0 and 1 resolve to one source row — or a whole default row when
    // the transformed coordinate is a scatter gap or out of bounds.
    extent_t src01[2] = {i, j};
    for (int d = 0; d < 2; ++d) {
      extent_t scaled = src01[d] * scale_num + pre;
      if (scale_den != 1) {
        if (scaled % scale_den != 0 || scaled < 0) {
          be.fill_row(out, k_lo, k_hi, dflt);
          return;
        }
        scaled /= scale_den;
      }
      scaled += offset[static_cast<std::size_t>(d)];
      if (scaled < 0 || scaled >= ish[static_cast<std::size_t>(d)]) {
        be.fill_row(out, k_lo, k_hi, dflt);
        return;
      }
      src01[d] = scaled;
    }
    const extent_t si = src01[0], sj = src01[1];
    if (scale_den == 1) {
      // src_k = k*scale_num + off2: a copy (num == 1) or gather (num > 1).
      const extent_t off2 = pre + offset[2];
      extent_t k0 = std::max(k_lo, detail::ceil_div(-off2, scale_num));
      extent_t k1 = std::min(
          k_hi, detail::floor_div(ish[2] - 1 - off2, scale_num) + 1);
      k0 = std::clamp(k0, k_lo, k_hi);
      k1 = std::clamp(k1, k0, k_hi);
      be.fill_row(out, k_lo, k0, dflt);
      be.fill_row(out, k1, k_hi, dflt);
      if (k0 >= k1) return;
      if constexpr (kRowInnerArray) {
        const double* src = inner.data() + (si * ish[1] + sj) * ish[2];
        if (scale_num == 1) {
          be.copy_row(out, src + k0 + off2, k0, k1);
        } else {
          be.gather_row(out + k0, src + k0 * scale_num + off2, scale_num,
                        k1 - k0);
        }
      } else {
        const extent_t s_lo = k0 * scale_num + off2;
        const extent_t s_hi = (k1 - 1) * scale_num + off2 + 1;
        if (scale_num == 1) {
          // Identity k transform: land the inner row directly in `out`,
          // shifted so inner position s writes out[s - off2].
          inner.fill_row(st.st, si, sj, out - off2, s_lo, s_hi);
        } else {
          inner.fill_row(st.st, si, sj, st.row.data(), s_lo, s_hi);
          be.gather_row(out + k0, st.row.data() + s_lo, scale_num, k1 - k0);
        }
      }
    } else {
      // scale_num == 1, scale_den > 1: valid outputs sit at k = t*den - pre
      // with source index t + off2; every other position is a scatter gap.
      be.fill_row(out, k_lo, k_hi, dflt);
      const extent_t off2 = offset[2];
      const extent_t t_lo =
          std::max(detail::ceil_div(k_lo + pre, scale_den),
                   std::max<extent_t>(0, -off2));
      const extent_t t_hi =
          std::min(detail::floor_div(k_hi - 1 + pre, scale_den) + 1,
                   ish[2] - off2);
      if (t_hi <= t_lo) return;
      double* base = out + t_lo * scale_den - pre;
      if constexpr (kRowInnerArray) {
        const double* src = inner.data() + (si * ish[1] + sj) * ish[2];
        be.scatter_row(base, scale_den, src + t_lo + off2, t_hi - t_lo);
      } else {
        inner.fill_row(st.st, si, sj, st.row.data(), t_lo + off2,
                       t_hi + off2);
        be.scatter_row(base, scale_den, st.row.data() + t_lo + off2,
                       t_hi - t_lo);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

template <ArrayExpr L, ArrayExpr R, typename Op>
auto ewise(L lhs, R rhs, Op op) {
  SACPP_REQUIRE(lhs.shape() == rhs.shape(),
                "element-wise expression needs equal shapes");
  return EwiseBinaryExpr<L, R, Op>{std::move(lhs), std::move(rhs),
                                   std::move(op)};
}

template <ArrayExpr E, typename Op>
auto ewise1(E inner, Op op) {
  return EwiseUnaryExpr<E, Op>{std::move(inner), std::move(op)};
}

template <typename T>
ScalarExpr<T> scalar_expr(const Shape& shp, T value) {
  return ScalarExpr<T>{shp, value};
}

// lazy condense: result[iv] = inner[str * iv + phase]; shape / str.
template <ArrayExpr E>
auto lazy_condense(extent_t str, E inner, extent_t phase = 0) {
  SACPP_REQUIRE(str >= 1, "condense stride must be >= 1");
  SACPP_REQUIRE(phase >= 0 && phase < str, "condense phase must be in [0, str)");
  const Shape out_shape(inner.shape().extents() / str);
  IndexVec zero = uniform_vec(out_shape.rank(), 0);
  return GatherExpr<E>{std::move(inner), out_shape,     str,
                       1,                phase,         std::move(zero),
                       expr_value_t<E>{}};
}

// lazy scatter: result[str*iv + phase] = inner[iv], zeros elsewhere;
// shape * str.
template <ArrayExpr E>
auto lazy_scatter(extent_t str, E inner, extent_t phase = 0) {
  SACPP_REQUIRE(str >= 1, "scatter stride must be >= 1");
  SACPP_REQUIRE(phase >= 0 && phase < str, "scatter phase must be in [0, str)");
  const Shape out_shape(str * inner.shape().extents());
  IndexVec zero = uniform_vec(out_shape.rank(), 0);
  return GatherExpr<E>{std::move(inner), out_shape,     1,
                       str,              -phase,        std::move(zero),
                       expr_value_t<E>{}};
}

// lazy take: result[iv] = inner[iv] for iv < shp (prefix box).
template <ArrayExpr E>
auto lazy_take(const IndexVec& shp, E inner) {
  IndexVec zero = uniform_vec(shp.size(), 0);
  return GatherExpr<E>{std::move(inner), Shape(shp), 1, 1, 0,
                       std::move(zero),  expr_value_t<E>{}};
}

// lazy embed: result of shape shp with inner placed at pos, zeros elsewhere.
template <ArrayExpr E>
auto lazy_embed(const IndexVec& shp, const IndexVec& pos, E inner) {
  IndexVec neg(pos.size());
  for (std::size_t d = 0; d < pos.size(); ++d) neg[d] = -pos[d];
  return GatherExpr<E>{std::move(inner), Shape(shp), 1, 1, 0,
                       std::move(neg),   expr_value_t<E>{}};
}

// ---------------------------------------------------------------------------
// Forcing
// ---------------------------------------------------------------------------

// Materialise an expression with a single with-loop over its full shape.
// The expression is passed through as the loop body unchanged, so any access
// form it offers — index-vector, unpacked rank-3, or the kPlanes row-fill
// protocol — stays visible to the execution-path selection in with_loop.hpp
// (wrapping in a lambda used to erase the row path).
template <ArrayExpr E>
Array<expr_value_t<E>> force(const E& e) {
  return with_genarray<expr_value_t<E>>(e.shape(), gen_all(), e,
                                        expr_value_t<E>{});
}

// Arrays force to themselves (useful in generic code).
template <typename T>
Array<T> force(const Array<T>& a) {
  return a;
}

}  // namespace sacpp::sac
