#pragma once
// Array formatting and serialisation.
//
// to_text renders small arrays for humans (examples, debugging, golden
// tests); save/load give a simple portable binary format for checkpointing
// grids between benchmark runs:
//
//   bytes 0..7   magic "SACPPAR\0"
//   8..15        rank (little-endian u64)
//   16..         rank extents (u64 each)
//   then         row-major float64 payload
//
// load validates magic, rank bounds, extent/payload consistency, so a
// truncated or corrupted file fails loudly instead of yielding garbage.

#include <string>

#include "sacpp/sac/array.hpp"

namespace sacpp::sac {

// Human-readable rendering.  Rank 0: the scalar.  Rank 1: one line.
// Rank 2: one line per row.  Rank >= 3: blocks per leading index.
// Arrays larger than `max_elems` are elided with an ellipsis summary.
std::string to_text(const Array<double>& a, int precision = 4,
                    extent_t max_elems = 4096);

// Write `a` to `path` in the binary format above (overwrites).
void save(const std::string& path, const Array<double>& a);

// Read an array written by save().
Array<double> load(const std::string& path);

}  // namespace sacpp::sac
