#pragma once
// Array<T>: the SAC array value.
//
// Arrays are immutable values with O(1) copies (shared buffers).  The only
// mutation paths are the with-loop engine and the `mutable_data()` escape
// hatch, both of which first call `ensure_unique()`, giving copy-on-write
// semantics exactly like SAC's reference-counting scheme: writes to a
// uniquely owned array happen in place, writes to a shared array first deep
// copy.
//
// Element types are restricted to arithmetic types — matching SAC's numeric
// array universe and keeping buffers memcpy-able.

#include <algorithm>
#include <cstring>
#include <initializer_list>
#include <type_traits>

#include "sacpp/common/error.hpp"
#include "sacpp/common/shape.hpp"
#include "sacpp/sac/buffer.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::sac {

template <typename T>
class Array {
  static_assert(std::is_arithmetic_v<T>,
                "sacpp arrays hold arithmetic element types");

 public:
  using value_type = T;

  // The default array is the scalar 0 (rank-0).
  Array() : Array(Shape{}, T{}) {}

  // Scalar (rank-0) array.
  /* implicit */ Array(T scalar) : shape_(Shape{}), buf_(1) {
    buf_.data()[0] = scalar;
  }

  // Uninitialised array of a given shape (with-loop engine fills it).
  static Array uninitialized(const Shape& shape) { return Array(shape); }

  // Constant array of a given shape.
  Array(const Shape& shape, T fill) : Array(shape) {
    std::fill_n(buf_.data(), static_cast<std::size_t>(shape.elem_count()),
                fill);
  }

  // Rank-1 array from an initializer list.
  static Array vector(std::initializer_list<T> values) {
    Array a(Shape{static_cast<extent_t>(values.size())});
    std::copy(values.begin(), values.end(), a.buf_.data());
    return a;
  }

  const Shape& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.rank(); }
  extent_t elem_count() const noexcept { return shape_.elem_count(); }
  bool is_scalar() const noexcept { return shape_.is_scalar(); }

  // Element selection (SAC's array[index-vector]).
  T operator[](const IndexVec& iv) const {
    return buf_.data()[shape_.linearize(iv)];
  }

  // Linear (row-major) element access.
  T at_linear(extent_t i) const {
    SACPP_ASSERT(i >= 0 && i < elem_count(), "linear index out of range");
    return buf_.data()[i];
  }

  // Scalar value of a rank-0 array.
  T scalar() const {
    SACPP_REQUIRE(is_scalar(), "scalar() on non-scalar array");
    return buf_.data()[0];
  }

  const T* data() const noexcept { return buf_.data(); }

  // Expression-template protocol: arrays are the leaf expressions.
  T operator()(const IndexVec& iv) const { return (*this)[iv]; }
  T operator()(extent_t i, extent_t j, extent_t k) const {
    SACPP_ASSERT(rank() == 3, "rank-3 access on non-rank-3 array");
    const auto& e = shape_.extents();
    return buf_.data()[(i * e[1] + j) * e[2] + k];
  }

  // True when this value is the sole owner of its buffer (reuse condition).
  bool unique() const noexcept { return buf_.unique(); }
  std::uint32_t use_count() const noexcept { return buf_.use_count(); }

  // Copy-on-write: after this call the buffer is uniquely owned.  Honours
  // the reuse ablation switch — with reuse disabled a fresh buffer is always
  // taken, modelling a SAC runtime without reference-counting reuse.
  void ensure_unique() {
    if (buf_.unique() && active_config().reuse) {
      stats().reuses += 1;
      return;
    }
    Buffer<T> fresh(static_cast<std::size_t>(elem_count()));
    std::memcpy(fresh.data(), buf_.data(),
                static_cast<std::size_t>(elem_count()) * sizeof(T));
    if (!buf_.unique()) stats().copies_on_write += 1;
    buf_ = std::move(fresh);
  }

  // Mutable access for the with-loop engine; triggers copy-on-write.
  T* mutable_data() {
    ensure_unique();
    return buf_.data();
  }

  // Mutable access WITHOUT the copy-on-write check; only the with-loop
  // engine uses this, on arrays it just created.  In checked mode the
  // uniqueness/alias checker records a use-after-steal event if the buffer
  // is in fact still aliased (refcount > 1) — writing through this pointer
  // would then be visible through every alias.
  T* raw_data_unchecked() noexcept {
    if (active_config().check) [[unlikely]] {
      buf_.note_unchecked_write();
    }
    return buf_.data();
  }

 private:
  explicit Array(const Shape& shape)
      : shape_(shape), buf_(static_cast<std::size_t>(shape.elem_count())) {}

  Shape shape_;
  Buffer<T> buf_;
};

// SAC's built-in structural primitives: dim(), shape() as free functions.
template <typename T>
std::size_t dim(const Array<T>& a) {
  return a.rank();
}

template <typename T>
const Shape& shape_of(const Array<T>& a) {
  return a.shape();
}

}  // namespace sacpp::sac
