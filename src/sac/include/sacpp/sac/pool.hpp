#pragma once
// Size-class pooled buffer allocator for the V-cycle hot path.
//
// The paper's scaling analysis (Sec. 5/6) pins SAC's parallel limit on
// dynamic memory management whose cost is invariant in grid size and
// therefore dominates the small grids at the bottom of the MG V-cycle.  The
// V-cycle recurs through the same ~12 buffer shapes every iteration, so
// nearly every allocation after the first cycle can be served by recycling
// a previously released block of the same size class instead of calling
// std::aligned_alloc/std::free.
//
// Structure (docs/memory.md):
//  * size classes — block sizes rounded up to whole cache lines; each class
//    has its own free list, so a recycled block always fits exactly;
//  * per-thread magazines — a small, lock-free cache of recently released
//    blocks per size class on each thread; the common alloc/release pair on
//    the coordinating thread never takes a lock;
//  * central depot — magazine overflow and refill go to free lists sharded
//    over independently locked buckets (sharded by size class, so threads
//    cycling different shapes do not contend);
//  * epoch-based trim — depot blocks are stamped with the epoch of their
//    release; trim() advances the epoch and frees blocks that sat unused
//    for two full epochs, bounding retained memory without a size heuristic.
//    An automatic trim runs every kPoolAutoTrimInterval releases.
//
// Blocks are ordinary std::aligned_alloc allocations of exactly
// pool_block_bytes(payload) bytes, so the pool can be toggled at any time
// (SacConfig::pool / SACPP_POOL): a block allocated with the pool off may be
// released into the pool and vice versa.
//
// Checked mode (SacConfig::check): releasing a block that is already sitting
// in a magazine or depot free list records a kPoolDoubleRelease event for
// the sacpp_check diagnostics instead of corrupting the free list.

#include <cstddef>
#include <cstdint>

namespace sacpp::sac {

inline constexpr std::size_t kBufferAlignment = 64;  // one cache line

// Every pool block is allocated with this size: the payload rounded up to a
// whole number of cache lines (also what std::aligned_alloc requires).  The
// rounded size doubles as the size-class key.
constexpr std::size_t pool_block_bytes(std::size_t payload) noexcept {
  if (payload == 0) payload = 1;  // rank-0 arrays still hold one element
  return (payload + kBufferAlignment - 1) / kBufferAlignment *
         kBufferAlignment;
}

// Automatic trim cadence: one epoch advance per this many releases.
inline constexpr std::uint64_t kPoolAutoTrimInterval = 1u << 15;

class BufferPool {
 public:
  // Thread-safe counter snapshot.  hits/misses/returns read the RuntimeStats
  // pool gauges — the pool increments those directly (one relaxed RMW per
  // event, no duplicate bookkeeping), so reset_stats() restarts them;
  // trimmed/drained are pool-internal and monotonic since process start.
  struct Totals {
    std::uint64_t hits = 0;       // allocations served from a free list
    std::uint64_t misses = 0;     // allocations that fell through to malloc
    std::uint64_t returns = 0;    // blocks released into the pool
    std::uint64_t trimmed = 0;    // blocks freed by epoch trim
    std::uint64_t drained = 0;    // blocks freed by drain()
  };

  // The process-global pool.  Never destroyed (it may outlive every static
  // holding an Array); cached blocks stay reachable through it, so leak
  // checkers do not report them, and drain() frees them on demand.
  static BufferPool& instance();

  // Allocate a cache-line aligned block of exactly `bytes` bytes, which must
  // be a pool_block_bytes() value.  Serves from the calling thread's
  // magazine, then from the depot (refilling the magazine), then from
  // std::aligned_alloc.  Returns nullptr only when the system allocator
  // fails.  `from_cache` (optional) reports whether this was a pool hit.
  void* allocate(std::size_t bytes, bool* from_cache = nullptr);

  // Release a block previously obtained with `bytes = pool_block_bytes(..)`
  // into the pool (magazine first, depot on overflow).  In checked mode a
  // block already sitting on a free list is reported and dropped.
  void deallocate(void* p, std::size_t bytes) noexcept;

  // Advance the epoch and free every depot block that has sat unused for
  // two full epochs.
  void trim();

  // Free every cached block: the calling thread's magazine and the whole
  // depot.  Other threads' magazines are untouched (they flush to the depot
  // when their thread exits).  Tests and memory-pressure handlers use this.
  void drain();

  // Flush the calling thread's magazine into the depot (making its blocks
  // visible to trim() and other threads).
  void flush_thread_cache();

  Totals totals() const;
  std::uint64_t epoch() const;
  std::size_t depot_cached_bytes() const;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Opaque implementation (sharded depot + counters); public only so the
  // thread-exit magazine flush in pool.cpp can reach it.
  struct Impl;

 private:
  BufferPool();
  ~BufferPool() = default;

  // The real alloc/release paths; the public entry points only bracket them
  // with telemetry when obs is enabled, so the magazine fast path carries no
  // span-object frame cost while telemetry is off.
  void* allocate_impl(std::size_t bytes, bool* from_cache);
  void deallocate_impl(void* p, std::size_t bytes) noexcept;

  Impl* impl_;
};

}  // namespace sacpp::sac
