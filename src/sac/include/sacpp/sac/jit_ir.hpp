#pragma once
// Row-program IR for the runtime JIT backend (docs/jit.md).
//
// The JIT engine does not interpret anything at row time: each Backend row
// primitive the planes stencil / expr / grid-transfer / fold paths issue is
// captured once per *shape* — (primitive, row length, sub-range, stride,
// coefficient bit patterns) — as a RowProgram, a tiny expression graph in
// the spirit of wlgraph.hpp's op algebra (wl::OpKind / wl::EwiseFn) but
// scoped to one contiguous k-row.  The program is lowered to specialised
// C++ source (jit_codegen.cpp) with every parameter baked in as a literal,
// compiled by the host toolchain into a shared object, and dlopen'd
// (jit_cache.cpp).
//
// Semantics are inherited from the Backend contract (backend.hpp):
//  * element-parallel programs reproduce the scalar engine's association
//    order per element and are lowered with -ffp-contract=off, so compiled
//    kernels are bit-identical to kScalar;
//  * fold programs are lowered to the exact portable 4-lane structure, so
//    they are bit-identical to the kSimd engines;
//  * the one IR-level simplification — dropping a `+ c*group` term whose
//    coefficient is bit-exact +0.0 (resid's c1, psinv's c3) — is exact for
//    finite nonzero data and can only flip the sign of exact-zero outputs,
//    which no norm or downstream arithmetic can observe (docs/jit.md).
//
// The IR serialises to a canonical byte string; its FNV-1a hash keys the
// on-disk kernel cache, so two processes that capture the same row shape
// reuse one compiled object.

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sacpp/common/shape.hpp"

namespace sacpp::sac::jit {

// Expression nodes, indices into RowProgram::nodes.  kLoad reads input row
// `input` at k+offset; kDerived reads one of the program's derived rows
// (the stencil u1/u2 partial sums) at k+offset; kConst is a baked double.
enum class Op : std::uint8_t {
  kLoad,
  kDerived,
  kConst,
  kAdd,
  kSub,
  kMul,
};

struct Node {
  Op op = Op::kConst;
  std::int16_t input = 0;       // kLoad / kDerived: row slot
  std::int32_t offset = 0;      // kLoad / kDerived: k displacement
  std::uint64_t bits = 0;       // kConst: IEEE-754 bit pattern
  std::int32_t a = -1, b = -1;  // binary operands
};

// The loop skeleton a program lowers to.  kMap covers every element-
// parallel primitive (plane sums, stencil combines, ewise merges): for k in
// [0, length), each output row o gets roots[o] evaluated at k (callers
// pre-offset the row pointers, so a sub-range [lo, hi) arrives as length
// hi-lo with loads at relative offsets).  kStencil is the fused planes row:
// derived rows u1/u2 are filled over [0, length) first, then roots[0] is
// written (or accumulated) over [lo, hi).  kGather / kScatter are the
// strided grid-transfer rows.  kSumSq / kMaxAbs fold roots[0] over
// [0, length) in the portable 4-lane structure, seeded/combined with the
// caller's accumulator.
enum class Pattern : std::uint8_t {
  kMap,
  kStencil,
  kGather,
  kScatter,
  kSumSq,
  kMaxAbs,
};

struct RowProgram {
  Pattern pattern = Pattern::kMap;
  std::uint8_t num_inputs = 0;
  std::uint8_t num_outputs = 0;
  std::uint8_t accumulate = 0;  // out[k] += expr instead of =
  std::uint8_t restrict_rows = 0;  // emit __restrict (rows never alias)
  std::int64_t length = 0;         // see Pattern
  std::int64_t lo = 0, hi = 0;     // kStencil combine range
  std::int64_t stride = 1;         // kGather / kScatter
  std::vector<Node> nodes;
  std::vector<std::int32_t> roots;     // one expression per output row
  std::vector<std::int32_t> derived;   // kStencil: u1/u2 expressions

  std::int32_t add(Node n) {
    nodes.push_back(n);
    return static_cast<std::int32_t>(nodes.size() - 1);
  }
  std::int32_t load(int input, int offset = 0) {
    Node n;
    n.op = Op::kLoad;
    n.input = static_cast<std::int16_t>(input);
    n.offset = offset;
    return add(n);
  }
  std::int32_t drow(int index, int offset = 0) {
    Node n;
    n.op = Op::kDerived;
    n.input = static_cast<std::int16_t>(index);
    n.offset = offset;
    return add(n);
  }
  std::int32_t constant(double v) {
    Node n;
    n.op = Op::kConst;
    std::memcpy(&n.bits, &v, sizeof v);
    return add(n);
  }
  std::int32_t bin(Op op, std::int32_t a, std::int32_t b) {
    Node n;
    n.op = op;
    n.a = a;
    n.b = b;
    return add(n);
  }

  // Canonical byte serialisation (field-by-field, little-endian fixed
  // widths — never the in-memory struct layout) and its FNV-1a hash: the
  // identity of the compiled kernel, stable across processes and runs.
  std::vector<std::uint8_t> serialize() const;
  std::uint64_t hash() const;
};

// -- program builders (the capture step) -------------------------------------
//
// Each builder mirrors one Backend row primitive; the emitted expression
// trees replicate the scalar engine's association order exactly (see
// backend_scalar.cpp — these are load-bearing parentheses).

// plane_sums: inputs im,ip,jm,jp,imm,imp,ipm,ipp -> outputs u1,u2 on [0, n).
RowProgram make_plane_sums(std::int64_t n);

// combine_row / accumulate_row over a pre-offset sub-range of length L:
// inputs uc,u1,u2 (readable at offsets -1..+1), output out.
RowProgram make_combine(const double c[4], bool accumulate, std::int64_t L);

// The fused planes row (Backend::stencil_row): inputs
// im,ip,jm,jp,imm,imp,ipm,ipp,uc on [0, n), derived u1/u2, output over
// [lo, hi).
RowProgram make_stencil_row(const double c[4], bool accumulate,
                            std::int64_t lo, std::int64_t hi, std::int64_t n);

// add/sub/mul_into_row over a pre-offset sub-range of length L:
// out[k] = a[k] <op> out[k] (the scalar operand order).
RowProgram make_ewise(Op op, std::int64_t L);

// gather_row / scatter_row with baked stride over [0, n).
RowProgram make_gather(std::int64_t stride, std::int64_t n);
RowProgram make_scatter(std::int64_t stride, std::int64_t n);

// sum_sq_row / max_abs_row over a pre-offset range of length L.
RowProgram make_sum_sq(std::int64_t L);
RowProgram make_max_abs(std::int64_t L);

// Lower a program to a self-contained C++ translation unit defining
//   extern "C" void sacpp_jit_kernel(const double* const* in,
//                                    double* const* out,
//                                    const double* dargs, double* dres);
// Constants are emitted as %a hex literals (exact), lengths and strides as
// literals; jit_cache.cpp compiles it with -O3 -march=native
// -ffp-contract=off.
std::string generate_source(const RowProgram& prog);

}  // namespace sacpp::sac::jit
