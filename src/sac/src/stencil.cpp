#include "sacpp/sac/stencil.hpp"

#include <map>
#include <memory>

namespace sacpp::sac {

StencilTable::StencilTable(std::size_t rank) {
  // Enumerate {-1, 0, 1}^rank via a base-3 odometer.
  IndexVec off(rank, -1);
  const extent_t total = [&] {
    extent_t n = 1;
    for (std::size_t d = 0; d < rank; ++d) n *= 3;
    return n;
  }();
  for (extent_t it = 0; it < total; ++it) {
    int cls = 0;
    for (std::size_t d = 0; d < rank; ++d) {
      if (off[d] != 0) ++cls;
    }
    entries_.push_back(Entry{IndexVec(off.begin(), off.end()), cls});
    for (std::size_t d = rank; d-- > 0;) {
      if (++off[d] <= 1) break;
      off[d] = -1;
    }
  }
}

const StencilTable& StencilTable::for_rank(std::size_t rank) {
  SACPP_REQUIRE(rank >= 1 && rank <= 8, "stencil rank must be in [1, 8]");
  static std::map<std::size_t, std::unique_ptr<StencilTable>> cache;
  auto& slot = cache[rank];
  if (!slot) slot.reset(new StencilTable(rank));
  return *slot;
}

Array<double> relax_kernel(const Array<double>& a, const StencilCoeffs& coeffs,
                           StencilMode mode) {
  // The expression itself is the loop body: it offers index-vector, unpacked
  // rank-3 and (in kPlanes mode) row-fill access, so every execution path —
  // generic, D3-specialised, and the shared plane-sum row path — picks the
  // best form available.
  const StencilExpr st(a, coeffs, mode);
  return with_genarray<double>(a.shape(), gen_interior(a.shape()), st, 0.0);
}

}  // namespace sacpp::sac
