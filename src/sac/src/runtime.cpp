#include "sacpp/sac/runtime.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sacpp/common/error.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/trace.hpp"
#include "sacpp/sac/check_events.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::sac {

struct ThreadPool::Impl {
  explicit Impl(unsigned workers) {
    for (unsigned w = 0; w < workers; ++w) {
      threads.emplace_back([this, w] { worker_loop(w + 1); });
    }
  }

  ~Impl() {
    {
      std::unique_lock<std::mutex> lock(mutex);
      stop = true;
    }
    work_ready.notify_all();
    for (auto& t : threads) t.join();
  }

  void worker_loop(unsigned worker_id) {
    obs::set_thread_name("sac-worker-" + std::to_string(worker_id));
    std::uint64_t seen_epoch = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return stop || epoch != seen_epoch; });
        if (stop) return;
        seen_epoch = epoch;
      }
      run_my_chunk(worker_id);
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::unique_lock<std::mutex> lock(mutex);
        work_done.notify_all();
      }
    }
  }

  void run_my_chunk(unsigned worker_id) {
    const extent_t lo = chunk_bounds[worker_id];
    const extent_t hi = chunk_bounds[worker_id + 1];
    if (lo < hi) (*task)(lo, hi, worker_id);
  }

  std::vector<std::thread> threads;
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  bool stop = false;
  std::uint64_t epoch = 0;
  std::atomic<int> pending{0};
  const std::function<void(extent_t, extent_t, unsigned)>* task = nullptr;
  std::vector<extent_t> chunk_bounds;  // size = participants + 1

  // Telemetry scratch (one slot per participant, reused across regions).
  // Workers write only their own slot; the coordinator reads after the join,
  // which the `pending` acquire/release pair orders.
  struct ChunkTiming {
    std::int64_t start_ns = 0;
    std::int64_t busy_ns = 0;
  };
  std::vector<ChunkTiming> obs_timing;
};

ThreadPool::ThreadPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
  // The coordinating thread is participant 0; spawn threads_ - 1 workers.
  impl_ = new Impl(threads_ - 1);
}

ThreadPool::~ThreadPool() { delete impl_; }

void ThreadPool::parallel_for(
    extent_t begin, extent_t end, extent_t align,
    const std::function<void(extent_t, extent_t, unsigned)>& fn) {
  SACPP_REQUIRE(align >= 1, "chunk alignment must be >= 1");
  if (end <= begin) return;

  const extent_t span = end - begin;
  const unsigned participants = threads_;
  if (participants == 1 || span < 2) {
    fn(begin, end, 0);
    return;
  }

  // Contiguous chunks with starts aligned down to `align` relative to
  // `begin`, so strided generators keep their step phase inside each chunk.
  std::vector<extent_t>& bounds = impl_->chunk_bounds;
  bounds.assign(participants + 1, end);
  bounds[0] = begin;
  for (unsigned p = 1; p < participants; ++p) {
    extent_t cut = begin + span * static_cast<extent_t>(p) /
                               static_cast<extent_t>(participants);
    cut = begin + (cut - begin) / align * align;
    bounds[p] = std::max(cut, bounds[p - 1]);
  }
  bounds[participants] = end;

  // Propagate the coordinator's per-job configuration binding (serve jobs)
  // into the workers: chunk bodies read active_config() for pool/stencil
  // decisions, and workers are shared process machinery that must observe
  // the job's snapshot, not the process global.
  const SacConfig* bound_cfg = detail::tl_config;
  std::function<void(extent_t, extent_t, unsigned)> cfg_wrapped;
  const std::function<void(extent_t, extent_t, unsigned)>* base = &fn;
  if (bound_cfg != nullptr) [[unlikely]] {
    cfg_wrapped = [&fn, bound_cfg](extent_t lo, extent_t hi, unsigned who) {
      ConfigBinding bind(bound_cfg);
      fn(lo, hi, who);
    };
    base = &cfg_wrapped;
  }

  // Same for the coordinator's request trace context (obs/trace.hpp): bind
  // it around every worker chunk so the spans a traced solve records on the
  // gang threads stitch into the request's tree.
  const obs::TraceContext trace_ctx = obs::current_trace();
  std::function<void(extent_t, extent_t, unsigned)> trace_wrapped;
  if (trace_ctx.active()) [[unlikely]] {
    const auto* inner = base;
    trace_wrapped = [inner, trace_ctx](extent_t lo, extent_t hi,
                                       unsigned who) {
      obs::TraceBinding bind(trace_ctx);
      (*inner)(lo, hi, who);
    };
    base = &trace_wrapped;
  }

  // Checked mode: log this region and the interval each worker will write,
  // so the race detector (src/check) can verify the chunks tile [begin, end)
  // disjointly with aligned starts, and the ownership watch can flag any
  // buffer retain/release performed off the coordinating thread while the
  // region runs.
  const bool checked = active_config().check;
  if (checked) [[unlikely]] {
    const std::uint64_t region =
        check_detail::begin_parallel_region(begin, end, align);
    for (unsigned p = 0; p < participants; ++p) {
      check_detail::record_chunk(region, p, bounds[p], bounds[p + 1],
                                 /*write=*/true);
    }
  }

  // Telemetry: wrap the task so every participant times its chunk on its own
  // ring; the coordinator derives the region's busy/idle/imbalance numbers at
  // the join and attributes them to the current V-cycle level.  The disabled
  // path touches none of this (one relaxed load + branch).
  const bool obs_on = obs::enabled();
  std::uint64_t region_id = 0;
  std::int64_t fork_ns = 0;
  std::function<void(extent_t, extent_t, unsigned)> instrumented;
  const std::function<void(extent_t, extent_t, unsigned)>* run = base;
  std::vector<Impl::ChunkTiming>& timing = impl_->obs_timing;
  if (obs_on) [[unlikely]] {
    region_id = obs::next_region_id();
    timing.assign(participants, Impl::ChunkTiming{});
    instrumented = [base, &timing, region_id](extent_t lo, extent_t hi,
                                              unsigned who) {
      const std::int64_t t0 = obs::now_ns();
      (*base)(lo, hi, who);
      const std::int64_t t1 = obs::now_ns();
      timing[who].start_ns = t0;
      timing[who].busy_ns = t1 - t0;
      obs::record_span(obs::SpanKind::kWorkerChunk, "chunk", t0, t1 - t0,
                       static_cast<std::int64_t>(who), region_id);
    };
    run = &instrumented;
    fork_ns = obs::now_ns();
  }

  impl_->task = run;
  impl_->pending.store(static_cast<int>(participants - 1),
                       std::memory_order_release);
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    ++impl_->epoch;
  }
  impl_->work_ready.notify_all();

  // Participant 0 (this thread) runs the first chunk.
  if (bounds[0] < bounds[1]) (*run)(bounds[0], bounds[1], 0);

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->work_done.wait(lock, [&] {
      return impl_->pending.load(std::memory_order_acquire) == 0;
    });
    impl_->task = nullptr;
  }
  if (checked) [[unlikely]] {
    check_detail::end_parallel_region();
  }

  if (obs_on) [[unlikely]] {
    const std::int64_t join_ns = obs::now_ns();
    obs::RegionSample sample;
    sample.level = obs::current_level();
    sample.participants = participants;
    sample.region_ns = join_ns - fork_ns;
    std::int64_t first_worker_start = 0;
    for (unsigned p = 0; p < participants; ++p) {
      sample.busy_total_ns += timing[p].busy_ns;
      sample.busy_max_ns = std::max(sample.busy_max_ns, timing[p].busy_ns);
      // Fork latency: how long after the fork the first *worker* (not the
      // coordinator, which starts immediately) began real work — the paper's
      // fixed fork/join overhead on small grids.
      if (p > 0 && timing[p].busy_ns > 0 &&
          (first_worker_start == 0 || timing[p].start_ns < first_worker_start)) {
        first_worker_start = timing[p].start_ns;
      }
    }
    if (first_worker_start > fork_ns) {
      sample.fork_latency_ns = first_worker_start - fork_ns;
    }
    obs::record_span(obs::SpanKind::kParallelRegion, "parallel_region",
                     fork_ns, sample.region_ns,
                     static_cast<std::int64_t>(participants), region_id);
    obs::record_region_sample(sample);
  }
}

namespace runtime_detail {
thread_local ThreadPool* tl_pool = nullptr;
}  // namespace runtime_detail

namespace {
std::unique_ptr<ThreadPool> g_pool;
// Guards creation/re-creation of the global pool.  Concurrent *use* of the
// global pool from several coordinators remains unsupported (its task slot
// is single); concurrent solves bind private pools instead.
std::mutex g_pool_mutex;
}

ThreadPool& runtime() {
  if (ThreadPool* bound = runtime_detail::tl_pool) return *bound;
  const SacConfig& cfg = active_config();
  unsigned want = cfg.mt_threads;
  if (want == 0) want = std::max(1u, std::thread::hardware_concurrency());
  if (!cfg.mt_enabled) want = 1;
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool || g_pool->thread_count() != want) {
    g_pool = std::make_unique<ThreadPool>(want);
  }
  return *g_pool;
}

void shutdown_runtime() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool.reset();
}

}  // namespace sacpp::sac
