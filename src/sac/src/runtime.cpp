#include "sacpp/sac/runtime.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sacpp/common/error.hpp"
#include "sacpp/sac/check_events.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::sac {

struct ThreadPool::Impl {
  explicit Impl(unsigned workers) {
    for (unsigned w = 0; w < workers; ++w) {
      threads.emplace_back([this, w] { worker_loop(w + 1); });
    }
  }

  ~Impl() {
    {
      std::unique_lock<std::mutex> lock(mutex);
      stop = true;
    }
    work_ready.notify_all();
    for (auto& t : threads) t.join();
  }

  void worker_loop(unsigned worker_id) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return stop || epoch != seen_epoch; });
        if (stop) return;
        seen_epoch = epoch;
      }
      run_my_chunk(worker_id);
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::unique_lock<std::mutex> lock(mutex);
        work_done.notify_all();
      }
    }
  }

  void run_my_chunk(unsigned worker_id) {
    const extent_t lo = chunk_bounds[worker_id];
    const extent_t hi = chunk_bounds[worker_id + 1];
    if (lo < hi) (*task)(lo, hi, worker_id);
  }

  std::vector<std::thread> threads;
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  bool stop = false;
  std::uint64_t epoch = 0;
  std::atomic<int> pending{0};
  const std::function<void(extent_t, extent_t, unsigned)>* task = nullptr;
  std::vector<extent_t> chunk_bounds;  // size = participants + 1
};

ThreadPool::ThreadPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
  // The coordinating thread is participant 0; spawn threads_ - 1 workers.
  impl_ = new Impl(threads_ - 1);
}

ThreadPool::~ThreadPool() { delete impl_; }

void ThreadPool::parallel_for(
    extent_t begin, extent_t end, extent_t align,
    const std::function<void(extent_t, extent_t, unsigned)>& fn) {
  SACPP_REQUIRE(align >= 1, "chunk alignment must be >= 1");
  if (end <= begin) return;

  const extent_t span = end - begin;
  const unsigned participants = threads_;
  if (participants == 1 || span < 2) {
    fn(begin, end, 0);
    return;
  }

  // Contiguous chunks with starts aligned down to `align` relative to
  // `begin`, so strided generators keep their step phase inside each chunk.
  std::vector<extent_t>& bounds = impl_->chunk_bounds;
  bounds.assign(participants + 1, end);
  bounds[0] = begin;
  for (unsigned p = 1; p < participants; ++p) {
    extent_t cut = begin + span * static_cast<extent_t>(p) /
                               static_cast<extent_t>(participants);
    cut = begin + (cut - begin) / align * align;
    bounds[p] = std::max(cut, bounds[p - 1]);
  }
  bounds[participants] = end;

  // Checked mode: log this region and the interval each worker will write,
  // so the race detector (src/check) can verify the chunks tile [begin, end)
  // disjointly with aligned starts, and the ownership watch can flag any
  // buffer retain/release performed off the coordinating thread while the
  // region runs.
  const bool checked = config().check;
  if (checked) [[unlikely]] {
    const std::uint64_t region =
        check_detail::begin_parallel_region(begin, end, align);
    for (unsigned p = 0; p < participants; ++p) {
      check_detail::record_chunk(region, p, bounds[p], bounds[p + 1],
                                 /*write=*/true);
    }
  }

  impl_->task = &fn;
  impl_->pending.store(static_cast<int>(participants - 1),
                       std::memory_order_release);
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    ++impl_->epoch;
  }
  impl_->work_ready.notify_all();

  // Participant 0 (this thread) runs the first chunk.
  if (bounds[0] < bounds[1]) fn(bounds[0], bounds[1], 0);

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->work_done.wait(lock, [&] {
      return impl_->pending.load(std::memory_order_acquire) == 0;
    });
    impl_->task = nullptr;
  }
  if (checked) [[unlikely]] {
    check_detail::end_parallel_region();
  }
}

namespace {
std::unique_ptr<ThreadPool> g_pool;
}

ThreadPool& runtime() {
  unsigned want = config().mt_threads;
  if (want == 0) want = std::max(1u, std::thread::hardware_concurrency());
  if (!config().mt_enabled) want = 1;
  if (!g_pool || g_pool->thread_count() != want) {
    g_pool = std::make_unique<ThreadPool>(want);
  }
  return *g_pool;
}

void shutdown_runtime() { g_pool.reset(); }

}  // namespace sacpp::sac
