// The kScalar engine: today's element-at-a-time row loops, verbatim, moved
// behind the Backend interface.  This is the bit-exact reference the
// differential battery (tests/sac_backend_test.cpp) pins every other
// backend against — the loops must keep the exact association order the
// pinned goldens were generated with, so do not "optimise" them here.

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sacpp/sac/backend.hpp"

namespace sacpp::sac {
namespace {

class ScalarBackend final : public Backend {
 public:
  const char* name() const noexcept override { return "scalar"; }
  unsigned lanes() const noexcept override { return 1; }
  bool vectorized() const noexcept override { return false; }

  void fill_row(double* out, extent_t lo, extent_t hi,
                double v) const override {
    std::fill(out + lo, out + hi, v);
  }

  void copy_row(double* out, const double* src, extent_t lo,
                extent_t hi) const override {
    if (hi > lo) {
      std::memcpy(out + lo, src, static_cast<std::size_t>(hi - lo) *
                                     sizeof(double));
    }
  }

  void plane_sums(const double* im, const double* ip, const double* jm,
                  const double* jp, const double* imm, const double* imp,
                  const double* ipm, const double* ipp, double* u1,
                  double* u2, extent_t n) const override {
    const double* __restrict rim = im;
    const double* __restrict rip = ip;
    const double* __restrict rjm = jm;
    const double* __restrict rjp = jp;
    const double* __restrict rimm = imm;
    const double* __restrict rimp = imp;
    const double* __restrict ripm = ipm;
    const double* __restrict ripp = ipp;
    double* __restrict w1 = u1;
    double* __restrict w2 = u2;
    for (extent_t k = 0; k < n; ++k) {
      w1[k] = ((rim[k] + rip[k]) + rjm[k]) + rjp[k];
      w2[k] = ((rimm[k] + rimp[k]) + ripm[k]) + ripp[k];
    }
  }

  void combine_row(const double* c, const double* uc, const double* u1,
                   const double* u2, double* out, extent_t lo,
                   extent_t hi) const override {
    const double* __restrict rc = uc;
    const double* __restrict r1 = u1;
    const double* __restrict r2 = u2;
    double* __restrict o = out;
    for (extent_t k = lo; k < hi; ++k) {
      o[k] = c[0] * rc[k] + c[1] * ((r1[k] + rc[k - 1]) + rc[k + 1]) +
             c[2] * ((r2[k] + r1[k - 1]) + r1[k + 1]) +
             c[3] * (r2[k - 1] + r2[k + 1]);
    }
  }

  void accumulate_row(const double* c, const double* uc, const double* u1,
                      const double* u2, double* out, extent_t lo,
                      extent_t hi) const override {
    const double* __restrict rc = uc;
    const double* __restrict r1 = u1;
    const double* __restrict r2 = u2;
    double* __restrict o = out;
    for (extent_t k = lo; k < hi; ++k) {
      o[k] += c[0] * rc[k] + c[1] * ((r1[k] + rc[k - 1]) + rc[k + 1]) +
              c[2] * ((r2[k] + r1[k - 1]) + r1[k + 1]) +
              c[3] * (r2[k - 1] + r2[k + 1]);
    }
  }

  void add_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    for (extent_t k = lo; k < hi; ++k) out[k] = a[k] + out[k];
  }

  void sub_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    for (extent_t k = lo; k < hi; ++k) out[k] = a[k] - out[k];
  }

  void mul_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    for (extent_t k = lo; k < hi; ++k) out[k] = a[k] * out[k];
  }

  void gather_row(double* out, const double* src, extent_t stride,
                  extent_t n) const override {
    for (extent_t t = 0; t < n; ++t) out[t] = src[t * stride];
  }

  void scatter_row(double* out, extent_t stride, const double* src,
                   extent_t n) const override {
    for (extent_t t = 0; t < n; ++t) out[t * stride] = src[t];
  }

  double sum_sq_row(double acc, const double* p, extent_t lo,
                    extent_t hi) const override {
    for (extent_t k = lo; k < hi; ++k) {
      const double x = p[k];
      acc = acc + x * x;
    }
    return acc;
  }

  double max_abs_row(double acc, const double* p, extent_t lo,
                     extent_t hi) const override {
    for (extent_t k = lo; k < hi; ++k) {
      acc = std::max(acc, std::fabs(p[k]));
    }
    return acc;
  }
};

}  // namespace

namespace detail {
const Backend& scalar_backend() noexcept {
  static const ScalarBackend be;
  return be;
}
}  // namespace detail

}  // namespace sacpp::sac
