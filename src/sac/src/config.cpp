#include "sacpp/sac/config.hpp"

#include <cstdlib>

#include "sacpp/sac/stats.hpp"

namespace sacpp::sac {

SacConfig config_from_env() {
  SacConfig cfg;
  const char* check = std::getenv("SACPP_CHECK");
  cfg.check = check != nullptr && check[0] != '\0' && check[0] != '0';
  const char* pool = std::getenv("SACPP_POOL");
  if (pool != nullptr && pool[0] != '\0') cfg.pool = pool[0] != '0';
  return cfg;
}

SacConfig& config() {
  static SacConfig cfg = config_from_env();
  return cfg;
}

ScopedConfig::ScopedConfig(const SacConfig& cfg) : saved_(config()) {
  config() = cfg;
}

ScopedConfig::~ScopedConfig() { config() = saved_; }

RuntimeStats& stats() {
  static RuntimeStats s;
  return s;
}

void reset_stats() { stats() = RuntimeStats{}; }

}  // namespace sacpp::sac
