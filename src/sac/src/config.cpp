#include "sacpp/sac/config.hpp"

#include "sacpp/sac/stats.hpp"

namespace sacpp::sac {

SacConfig& config() {
  static SacConfig cfg;
  return cfg;
}

ScopedConfig::ScopedConfig(const SacConfig& cfg) : saved_(config()) {
  config() = cfg;
}

ScopedConfig::~ScopedConfig() { config() = saved_; }

RuntimeStats& stats() {
  static RuntimeStats s;
  return s;
}

void reset_stats() { stats() = RuntimeStats{}; }

}  // namespace sacpp::sac
