#include "sacpp/sac/config.hpp"

#include <cstdlib>
#include <cstring>

#include "sacpp/obs/export.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/sac/backend.hpp"
#include "sacpp/sac/pool.hpp"
#include "sacpp/sac/stats.hpp"

namespace sacpp::sac {

const char* stencil_mode_name(StencilMode mode) {
  switch (mode) {
    case StencilMode::kGrouped: return "grouped";
    case StencilMode::kNaive: return "naive";
    case StencilMode::kPlanes: return "planes";
  }
  return "grouped";
}

bool parse_stencil_mode(const char* name, StencilMode* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "grouped") == 0) {
    *out = StencilMode::kGrouped;
  } else if (std::strcmp(name, "naive") == 0) {
    *out = StencilMode::kNaive;
  } else if (std::strcmp(name, "planes") == 0) {
    *out = StencilMode::kPlanes;
  } else {
    return false;
  }
  return true;
}

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScalar: return "scalar";
    case BackendKind::kSimd: return "simd";
    case BackendKind::kSimdPortable: return "simd-portable";
    case BackendKind::kJit: return "jit";
  }
  return "scalar";
}

// Parsing walks the registry rather than repeating the strings, so the
// accepted set, the canonical names and the CLI help text cannot drift.
bool parse_backend(const char* name, BackendKind* out) {
  if (name == nullptr || out == nullptr) return false;
  for (BackendKind kind : kAllBackendKinds) {
    if (std::strcmp(name, backend_name(kind)) == 0) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::string backend_names(const char* sep) {
  std::string joined;
  for (BackendKind kind : kAllBackendKinds) {
    if (!joined.empty()) joined += sep;
    joined += backend_name(kind);
  }
  return joined;
}

SacConfig config_from_env() {
  SacConfig cfg;
  const char* check = std::getenv("SACPP_CHECK");
  cfg.check = check != nullptr && check[0] != '\0' && check[0] != '0';
  const char* pool = std::getenv("SACPP_POOL");
  if (pool != nullptr && pool[0] != '\0') cfg.pool = pool[0] != '0';
  const char* obs = std::getenv("SACPP_OBS");
  cfg.obs = obs != nullptr && obs[0] != '\0' && obs[0] != '0';
  // Unknown values are ignored rather than fatal: a stale SACPP_STENCIL_MODE
  // must not break every binary in the tree.
  const char* mode = std::getenv("SACPP_STENCIL_MODE");
  if (mode != nullptr) parse_stencil_mode(mode, &cfg.stencil_mode);
  const char* backend = std::getenv("SACPP_BACKEND");
  if (backend != nullptr) parse_backend(backend, &cfg.backend);
  return cfg;
}

namespace {

// RuntimeStats and pool totals in the sacpp_obs metrics dump — registered
// once, on first config() use, so every binary that touches the array system
// exports the same counter set (the "one source of truth" for what npb_mg
// used to print ad hoc).
void collect_stats(obs::MetricSink& sink) {
  const RuntimeStats& st = stats();
  sink.counter("sacpp_allocations_total",
               static_cast<double>(st.allocations), "fresh buffers allocated");
  sink.counter("sacpp_releases_total", static_cast<double>(st.releases),
               "buffers freed (refcount reached 0)");
  sink.counter("sacpp_bytes_allocated_total",
               static_cast<double>(st.bytes_allocated),
               "total bytes of fresh buffers");
  sink.counter("sacpp_reuses_total", static_cast<double>(st.reuses),
               "buffers stolen via uniqueness reuse");
  sink.counter("sacpp_copies_on_write_total",
               static_cast<double>(st.copies_on_write),
               "deep copies forced by shared buffers");
  sink.counter("sacpp_with_loops_total", static_cast<double>(st.with_loops),
               "with-loop executions");
  sink.counter("sacpp_elements_total", static_cast<double>(st.elements),
               "generator elements processed");
  sink.counter("sacpp_parallel_regions_total",
               static_cast<double>(st.parallel_regions),
               "with-loops run multithreaded");
  sink.counter("sacpp_pool_hits_total", static_cast<double>(st.pool_hits),
               "buffers served from the BufferPool");
  sink.counter("sacpp_pool_misses_total",
               static_cast<double>(st.pool_misses),
               "pooled allocations that fell through to malloc");
  sink.counter("sacpp_pool_returns_total",
               static_cast<double>(st.pool_returns),
               "buffers recycled into the pool");
  sink.counter("sacpp_stencil_rows_reused_total",
               static_cast<double>(st.stencil_rows_reused),
               "output rows computed via the kPlanes shared plane-sum path");
  sink.counter("sacpp_backend_simd_rows_total",
               static_cast<double>(st.backend_simd_rows),
               "rows dispatched through a vectorized backend row primitive");
  sink.counter("sacpp_jit_kernel_calls_total",
               static_cast<double>(st.jit_kernel_calls),
               "row primitive calls served by a compiled JIT kernel");
  sink.counter("sacpp_jit_fallback_calls_total",
               static_cast<double>(st.jit_fallback_calls),
               "JIT row calls that ran on the fallback SIMD engine");
  sink.counter("sacpp_jit_compiles_total",
               static_cast<double>(st.jit_compiles),
               "JIT kernels compiled by the host toolchain");
  sink.counter("sacpp_jit_compile_fails_total",
               static_cast<double>(st.jit_compile_fails),
               "JIT kernel compiles that failed (engine degrades to simd)");
  sink.counter("sacpp_jit_disk_hits_total",
               static_cast<double>(st.jit_disk_hits),
               "JIT kernels served from the SACPP_JIT_CACHE_DIR disk cache");
  // Which row engine the process-wide default resolves to right now: the
  // vector width (1 = scalar, 4 = simd), so dashboards can tell a scalar
  // serving fleet from a vectorized one at a glance.
  sink.gauge("sacpp_backend_lanes",
             static_cast<double>(backend_for(config().backend).lanes()),
             "vector lanes of the configured default backend");
  const BufferPool::Totals t = BufferPool::instance().totals();
  sink.counter("sacpp_pool_trimmed_total", static_cast<double>(t.trimmed),
               "blocks freed by epoch trim");
  sink.gauge("sacpp_pool_depot_cached_bytes",
             static_cast<double>(BufferPool::instance().depot_cached_bytes()),
             "bytes currently cached in the depot free lists");
}

}  // namespace

namespace detail {
thread_local const SacConfig* tl_config = nullptr;
}  // namespace detail

SacConfig& config() {
  static SacConfig cfg = [] {
    SacConfig c = config_from_env();
    obs::set_enabled(c.obs);
    obs::register_collector(collect_stats);
    return c;
  }();
  return cfg;
}

void set_obs(bool on) {
  config().obs = on;
  obs::set_enabled(on);
}

ScopedConfig::ScopedConfig(const SacConfig& cfg) : saved_(config()) {
  config() = cfg;
  obs::set_enabled(cfg.obs);
}

ScopedConfig::~ScopedConfig() {
  obs::set_enabled(saved_.obs);
  config() = saved_;
}

RuntimeStats& stats() {
  static RuntimeStats s;
  return s;
}

void reset_stats() { stats() = RuntimeStats{}; }

RuntimeStats stats_snapshot() { return stats(); }

}  // namespace sacpp::sac
