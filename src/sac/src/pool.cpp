#include "sacpp/sac/pool.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sacpp/common/lockorder.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/sac/check_events.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/stats.hpp"

namespace sacpp::sac {

namespace {

// -- central depot geometry ---------------------------------------------------

constexpr int kShards = 8;

// Size classes hash to shards so threads cycling through different shapes
// contend on different locks; the multiplier spreads the low bits of the
// cache-line count (all size classes share the low 6 zero bits).
int shard_of(std::size_t bytes) noexcept {
  const std::uint64_t lines = static_cast<std::uint64_t>(bytes) >> 6;
  return static_cast<int>((lines * 0x9E3779B97F4A7C15ull) >> 61) &
         (kShards - 1);
}

struct DepotEntry {
  void* block;
  std::uint64_t epoch;  // pool epoch at release time (trim ages on this)
};

struct Shard {
  mutable TrackedMutex mutex{"sac.pool.depot"};
  // size class -> free blocks, most recently released last.
  std::unordered_map<std::size_t, std::vector<DepotEntry>> lists;
  std::size_t cached_bytes = 0;
};

// -- per-thread magazine ------------------------------------------------------

// A magazine caches a handful of blocks per size class with no locking.  The
// V-cycle cycles through ~12 shapes, so a few spare class slots cover the
// whole benchmark; threads that touch more size classes than kSlots fall
// through to the depot for the excess classes.
constexpr int kMagazineSlots = 24;
constexpr int kMagazineDepth = 8;
// Blocks at or above this size keep only a shallow cache (the top-of-V-cycle
// grids are hundreds of MB for class A; two spares suffice since at most a
// couple are live between release and reuse).
constexpr std::size_t kBigBlockBytes = std::size_t{8} << 20;
constexpr int kBigBlockDepth = 2;

int depth_limit(std::size_t bytes) noexcept {
  return bytes >= kBigBlockBytes ? kBigBlockDepth : kMagazineDepth;
}

struct MagazineSlot {
  std::size_t bytes = 0;
  int n = 0;
  void* blocks[kMagazineDepth];
};

}  // namespace

// -- pool implementation ------------------------------------------------------

struct BufferPool::Impl {
  // hit/miss/return counting lives in the RuntimeStats pool gauges
  // (stats().pool_*): one relaxed RMW per event, shared with the per-run
  // counters instead of duplicated here.
  Shard shards[kShards];
  std::atomic<std::uint64_t> epoch{1};
  std::atomic<std::uint64_t> trimmed{0};
  std::atomic<std::uint64_t> drained{0};

  // Push to the depot; takes the shard lock.  May throw bad_alloc from the
  // free-list map; callers own the fallback (std::free the block).
  void depot_push(void* p, std::size_t bytes) {
    Shard& s = shards[shard_of(bytes)];
    const std::uint64_t e = epoch.load(std::memory_order_relaxed);
    std::lock_guard<TrackedMutex> lock(s.mutex);
    s.lists[bytes].push_back(DepotEntry{p, e});
    s.cached_bytes += bytes;
  }

  // Pop up to `max` blocks of one size class into `out`.
  int depot_pop(std::size_t bytes, void** out, int max) {
    Shard& s = shards[shard_of(bytes)];
    std::lock_guard<TrackedMutex> lock(s.mutex);
    auto it = s.lists.find(bytes);
    if (it == s.lists.end()) return 0;
    std::vector<DepotEntry>& list = it->second;
    int n = 0;
    while (n < max && !list.empty()) {
      out[n++] = list.back().block;
      list.pop_back();
      s.cached_bytes -= bytes;
    }
    if (list.empty()) s.lists.erase(it);
    return n;
  }

  bool depot_contains(void* p, std::size_t bytes) const {
    const Shard& s = shards[shard_of(bytes)];
    std::lock_guard<TrackedMutex> lock(s.mutex);
    auto it = s.lists.find(bytes);
    if (it == s.lists.end()) return false;
    for (const DepotEntry& e : it->second) {
      if (e.block == p) return true;
    }
    return false;
  }
};

namespace {

// Set once when the immortal pool is constructed; magazines (which are only
// ever touched from inside pool calls, i.e. after construction) use it to
// flush at thread exit without re-entering instance().
BufferPool::Impl* g_pool_impl = nullptr;

// Thread-local magazine.  Destroyed at thread exit (flushing its blocks to
// the immortal depot); `tl_magazine_dead` guards releases arriving from
// static destructors after that point — those go straight to the depot.
struct Magazine {
  MagazineSlot slots[kMagazineSlots];
  int used = 0;

  ~Magazine() {
    tl_magazine_dead = true;
    for (int i = 0; i < used; ++i) {
      for (int j = 0; j < slots[i].n; ++j) {
        try {
          g_pool_impl->depot_push(slots[i].blocks[j], slots[i].bytes);
        } catch (...) {
          std::free(slots[i].blocks[j]);
        }
      }
      slots[i].n = 0;
    }
  }

  MagazineSlot* find(std::size_t bytes) noexcept {
    for (int i = 0; i < used; ++i) {
      if (slots[i].bytes == bytes) return &slots[i];
    }
    return nullptr;
  }

  MagazineSlot* find_or_claim(std::size_t bytes) noexcept {
    if (MagazineSlot* s = find(bytes)) return s;
    if (used == kMagazineSlots) return nullptr;
    MagazineSlot* s = &slots[used++];
    s->bytes = bytes;
    s->n = 0;
    return s;
  }

  static thread_local bool tl_magazine_dead;
};

thread_local bool Magazine::tl_magazine_dead = false;

Magazine* magazine() {
  if (Magazine::tl_magazine_dead) return nullptr;
  static thread_local Magazine m;
  return &m;
}

}  // namespace

BufferPool::BufferPool() : impl_(new Impl) { g_pool_impl = impl_; }

BufferPool& BufferPool::instance() {
  // Intentionally leaked: arrays held in statics may release buffers after
  // every other static is gone, and cached blocks must stay reachable for
  // leak checkers.
  static BufferPool* pool = new BufferPool;
  return *pool;
}

void* BufferPool::allocate(std::size_t bytes, bool* from_cache) {
  if (!obs::enabled()) [[likely]] return allocate_impl(bytes, from_cache);
  const std::int64_t t0 = obs::now_ns();
  void* p = allocate_impl(bytes, from_cache);
  obs::record_span(obs::SpanKind::kPoolAlloc, "pool_alloc", t0,
                   obs::now_ns() - t0, static_cast<std::int64_t>(bytes));
  return p;
}

void* BufferPool::allocate_impl(std::size_t bytes, bool* from_cache) {
  Magazine* mag = magazine();
  if (mag != nullptr) {
    if (MagazineSlot* slot = mag->find(bytes); slot != nullptr && slot->n > 0) {
      stats().pool_hits += 1;
      if (from_cache != nullptr) *from_cache = true;
      return slot->blocks[--slot->n];
    }
  }

  // Magazine empty for this class: refill a batch from the depot so the next
  // few allocations of the same shape stay lock-free.
  void* batch[kMagazineDepth];
  const int want = mag != nullptr ? depth_limit(bytes) / 2 + 1 : 1;
  const int got = impl_->depot_pop(bytes, batch, want);
  if (got > 0) {
    if (mag != nullptr && got > 1) {
      MagazineSlot* slot = mag->find_or_claim(bytes);
      for (int i = 1; i < got; ++i) {
        if (slot != nullptr && slot->n < depth_limit(bytes)) {
          slot->blocks[slot->n++] = batch[i];
        } else {
          impl_->depot_push(batch[i], bytes);
        }
      }
    }
    stats().pool_hits += 1;
    if (from_cache != nullptr) *from_cache = true;
    return batch[0];
  }

  stats().pool_misses += 1;
  if (from_cache != nullptr) *from_cache = false;
  return std::aligned_alloc(kBufferAlignment, bytes);
}

void BufferPool::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (!obs::enabled()) [[likely]] return deallocate_impl(p, bytes);
  const std::int64_t t0 = obs::now_ns();
  deallocate_impl(p, bytes);
  obs::record_span(obs::SpanKind::kPoolRelease, "pool_release", t0,
                   obs::now_ns() - t0, static_cast<std::int64_t>(bytes));
}

void BufferPool::deallocate_impl(void* p, std::size_t bytes) noexcept {
  Magazine* mag = magazine();

  if (active_config().check) [[unlikely]] {
    // Double-release screen: a block already sitting on a free list must not
    // be pushed again (two future allocations would alias).  Report and
    // drop.  Best effort: other threads' magazines are not scanned.
    bool duplicate = false;
    if (mag != nullptr) {
      if (MagazineSlot* slot = mag->find(bytes)) {
        for (int i = 0; i < slot->n && !duplicate; ++i) {
          duplicate = slot->blocks[i] == p;
        }
      }
    }
    if (!duplicate) duplicate = impl_->depot_contains(p, bytes);
    if (duplicate) {
      check_detail::record_buffer_event(
          check_detail::BufferEventKind::kPoolDoubleRelease,
          static_cast<std::uint32_t>(bytes));
      return;
    }
  }

  const std::uint64_t returned = stats().pool_returns.fetch_add(1) + 1;

  bool cached = false;
  if (mag != nullptr) {
    if (MagazineSlot* slot = mag->find_or_claim(bytes)) {
      const int limit = depth_limit(bytes);
      if (slot->n == limit) {
        // Overflow: spill the older half to the depot, keeping the most
        // recently released (cache-warm) blocks local.
        const int spill = limit / 2;
        try {
          for (int i = 0; i < spill; ++i) {
            impl_->depot_push(slot->blocks[i], bytes);
          }
        } catch (...) {
          std::free(p);  // depot map allocation failed: give the block back
          return;
        }
        for (int i = spill; i < slot->n; ++i) {
          slot->blocks[i - spill] = slot->blocks[i];
        }
        slot->n -= spill;
      }
      slot->blocks[slot->n++] = p;
      cached = true;
    }
  }
  if (!cached) {
    try {
      impl_->depot_push(p, bytes);
    } catch (...) {
      std::free(p);
      return;
    }
  }

  if (returned % kPoolAutoTrimInterval == 0) trim();
}

void BufferPool::trim() {
  const std::uint64_t now =
      impl_->epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t freed = 0;
  for (Shard& s : impl_->shards) {
    std::lock_guard<TrackedMutex> lock(s.mutex);
    for (auto it = s.lists.begin(); it != s.lists.end();) {
      std::vector<DepotEntry>& list = it->second;
      std::size_t keep = 0;
      for (DepotEntry& e : list) {
        if (e.epoch + 2 <= now) {
          std::free(e.block);
          s.cached_bytes -= it->first;
          ++freed;
        } else {
          list[keep++] = e;
        }
      }
      list.resize(keep);
      it = list.empty() ? s.lists.erase(it) : std::next(it);
    }
  }
  impl_->trimmed.fetch_add(freed, std::memory_order_relaxed);
}

void BufferPool::drain() {
  flush_thread_cache();
  std::uint64_t freed = 0;
  for (Shard& s : impl_->shards) {
    std::lock_guard<TrackedMutex> lock(s.mutex);
    for (auto& [bytes, list] : s.lists) {
      (void)bytes;
      for (DepotEntry& e : list) {
        std::free(e.block);
        ++freed;
      }
    }
    s.lists.clear();
    s.cached_bytes = 0;
  }
  impl_->drained.fetch_add(freed, std::memory_order_relaxed);
}

void BufferPool::flush_thread_cache() {
  Magazine* mag = magazine();
  if (mag == nullptr) return;
  for (int i = 0; i < mag->used; ++i) {
    MagazineSlot& slot = mag->slots[i];
    for (int j = 0; j < slot.n; ++j) {
      try {
        impl_->depot_push(slot.blocks[j], slot.bytes);
      } catch (...) {
        std::free(slot.blocks[j]);
      }
    }
    slot.n = 0;
  }
}

BufferPool::Totals BufferPool::totals() const {
  Totals t;
  t.hits = stats().pool_hits.load();
  t.misses = stats().pool_misses.load();
  t.returns = stats().pool_returns.load();
  t.trimmed = impl_->trimmed.load(std::memory_order_relaxed);
  t.drained = impl_->drained.load(std::memory_order_relaxed);
  return t;
}

std::uint64_t BufferPool::epoch() const {
  return impl_->epoch.load(std::memory_order_relaxed);
}

std::size_t BufferPool::depot_cached_bytes() const {
  std::size_t total = 0;
  for (const Shard& s : impl_->shards) {
    std::lock_guard<TrackedMutex> lock(s.mutex);
    total += s.cached_bytes;
  }
  return total;
}

}  // namespace sacpp::sac
