#include "sacpp/sac/io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sacpp/common/error.hpp"
#include "sacpp/sac/array_lib.hpp"

namespace sacpp::sac {

namespace {

constexpr char kMagic[8] = {'S', 'A', 'C', 'P', 'P', 'A', 'R', '\0'};
constexpr std::size_t kMaxRank = 16;

void put_u64(std::ostream& os, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(bytes), 8);
}

std::uint64_t get_u64(std::istream& is) {
  unsigned char bytes[8];
  is.read(reinterpret_cast<char*>(bytes), 8);
  SACPP_REQUIRE(is.good(), "array file truncated");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | bytes[i];
  return v;
}

}  // namespace

std::string to_text(const Array<double>& a, int precision,
                    extent_t max_elems) {
  std::ostringstream os;
  char buf[64];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    return std::string(buf);
  };
  if (a.elem_count() > max_elems) {
    os << "Array" << a.shape().to_string() << " (" << a.elem_count()
       << " elements elided)";
    return os.str();
  }
  switch (a.rank()) {
    case 0:
      os << num(a.scalar());
      break;
    case 1: {
      os << '[';
      for (extent_t i = 0; i < a.shape()[0]; ++i) {
        if (i) os << ' ';
        os << num(a[IndexVec{i}]);
      }
      os << ']';
      break;
    }
    case 2: {
      for (extent_t i = 0; i < a.shape()[0]; ++i) {
        os << (i ? "\n[" : "[");
        for (extent_t j = 0; j < a.shape()[1]; ++j) {
          if (j) os << ' ';
          os << num(a[IndexVec{i, j}]);
        }
        os << ']';
      }
      break;
    }
    default: {
      // one rank-(r-1) block per leading index
      for (extent_t i = 0; i < a.shape()[0]; ++i) {
        if (i) os << "\n";
        os << "[" << i << ", ...] =\n";
        os << to_text(sel(IndexVec{i}, a), precision, max_elems);
      }
      break;
    }
  }
  return os.str();
}

void save(const std::string& path, const Array<double>& a) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SACPP_REQUIRE(out.good(), "cannot open array file for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  put_u64(out, a.rank());
  for (std::size_t d = 0; d < a.rank(); ++d) {
    put_u64(out, static_cast<std::uint64_t>(a.shape().extent(d)));
  }
  out.write(reinterpret_cast<const char*>(a.data()),
            static_cast<std::streamsize>(a.elem_count() *
                                         static_cast<extent_t>(sizeof(double))));
  SACPP_REQUIRE(out.good(), "write failed for array file: " + path);
}

Array<double> load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SACPP_REQUIRE(in.good(), "cannot open array file: " + path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  SACPP_REQUIRE(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                "not a sacpp array file: " + path);
  const std::uint64_t rank = get_u64(in);
  SACPP_REQUIRE(rank <= kMaxRank, "array file rank out of bounds");
  IndexVec extents(static_cast<std::size_t>(rank));
  for (std::size_t d = 0; d < rank; ++d) {
    const std::uint64_t e = get_u64(in);
    SACPP_REQUIRE(e <= static_cast<std::uint64_t>(1) << 40,
                  "array file extent out of bounds");
    extents[d] = static_cast<extent_t>(e);
  }
  const Shape shape(extents);
  Array<double> a = Array<double>::uninitialized(shape);
  in.read(reinterpret_cast<char*>(a.raw_data_unchecked()),
          static_cast<std::streamsize>(shape.elem_count() *
                                       static_cast<extent_t>(sizeof(double))));
  SACPP_REQUIRE(in.gcount() ==
                    static_cast<std::streamsize>(shape.elem_count() *
                                                 static_cast<extent_t>(
                                                     sizeof(double))),
                "array file payload truncated: " + path);
  return a;
}

}  // namespace sacpp::sac
