// The kJit engine (docs/jit.md): every row primitive first asks the kernel
// cache for a compiled kernel specialised on this call's shape — length,
// sub-range, stride, coefficient bit patterns — and runs it when ready.
// Until the kernel lands (or forever, when the host has no toolchain) the
// row runs on the resolved kSimd engine instead.  Both paths are
// bit-identical by the backend contract, so the hot swap is invisible to
// numerics; stats().jit_kernel_calls / jit_fallback_calls make it visible
// to observability.

#include <cstring>

#include "sacpp/sac/backend.hpp"
#include "sacpp/sac/jit.hpp"
#include "sacpp/sac/stats.hpp"

namespace sacpp::sac {
namespace {

using jit::KernelFn;
using jit::KernelKey;
using jit::RowProgram;

// KernelKey::prim tags.  Part of the in-memory key only (the disk name
// keys on the IR hash), so renumbering costs one warm cache.
enum Prim : std::uint8_t {
  kPrimPlaneSums = 1,
  kPrimCombine,
  kPrimStencil,
  kPrimAddInto,
  kPrimSubInto,
  kPrimMulInto,
  kPrimGather,
  kPrimScatter,
  kPrimSumSq,
  kPrimMaxAbs,
};

// Rows shorter than this never pay for kernel dispatch: at the bottom of
// the V-cycle the cache probe would cost more than the row.  Fallback is
// bit-identical, so the cutoff is a pure performance knob.
constexpr std::int64_t kMinRow = 16;

// Stencil kernels keep the u1/u2 partials in registers (AVX-512 hosts) or
// stack arrays of 2n doubles (portable lowering); cap n so generated
// frames stay small either way.  Larger rows fall back.
constexpr std::int64_t kMaxStencilRow = 4096;

void key_coeffs(const KernelKey& k, double c[4]) {
  std::memcpy(c, k.c, sizeof k.c);
}

// Per-thread last-kernel memo, one slot per primitive tag.  MG calls the
// same kernel shape for every row of a slab, so after the first row the
// dispatch cost collapses to one epoch load and one key compare — the
// cache's hash-and-probe only runs again when the shape changes.  The
// epoch guard drops the memo when the cache is reset or degrades, so a
// stale pointer can never outlive the decision that invalidated it.
struct Memo {
  KernelKey key{};
  KernelFn fn = nullptr;
  std::uint32_t epoch = 0;
};

KernelFn memo_request(const KernelKey& k,
                      RowProgram (*make)(const KernelKey&)) {
  thread_local Memo memo[16];
  Memo& m = memo[k.prim & 15];
  const std::uint32_t ep = jit::epoch();
  if (m.fn != nullptr && m.epoch == ep && m.key == k) return m.fn;
  KernelFn f = jit::request(k, make);
  if (f != nullptr) {
    m.key = k;
    m.fn = f;
    m.epoch = ep;
  }
  return f;
}

RowProgram make_plane_sums_prog(const KernelKey& k) {
  return jit::make_plane_sums(k.length);
}

RowProgram make_combine_prog(const KernelKey& k) {
  double c[4];
  key_coeffs(k, c);
  return jit::make_combine(c, k.accumulate != 0, k.length);
}

RowProgram make_stencil_prog(const KernelKey& k) {
  double c[4];
  key_coeffs(k, c);
  return jit::make_stencil_row(c, k.accumulate != 0, k.lo, k.hi, k.length);
}

RowProgram make_add_prog(const KernelKey& k) {
  return jit::make_ewise(jit::Op::kAdd, k.length);
}
RowProgram make_sub_prog(const KernelKey& k) {
  return jit::make_ewise(jit::Op::kSub, k.length);
}
RowProgram make_mul_prog(const KernelKey& k) {
  return jit::make_ewise(jit::Op::kMul, k.length);
}

RowProgram make_gather_prog(const KernelKey& k) {
  return jit::make_gather(k.stride, k.length);
}
RowProgram make_scatter_prog(const KernelKey& k) {
  return jit::make_scatter(k.stride, k.length);
}

RowProgram make_sum_sq_prog(const KernelKey& k) {
  return jit::make_sum_sq(k.length);
}
RowProgram make_max_abs_prog(const KernelKey& k) {
  return jit::make_max_abs(k.length);
}

class JitBackend final : public Backend {
 public:
  JitBackend() : fb_(backend_for(BackendKind::kSimd)) {}

  const char* name() const noexcept override { return "jit"; }
  unsigned lanes() const noexcept override { return fb_.lanes(); }
  bool vectorized() const noexcept override { return true; }
  bool jit() const noexcept override { return true; }

  void fill_row(double* out, extent_t lo, extent_t hi,
                double v) const override {
    fb_.fill_row(out, lo, hi, v);  // memset-class; nothing to specialise
  }

  void copy_row(double* out, const double* src, extent_t lo,
                extent_t hi) const override {
    fb_.copy_row(out, src, lo, hi);  // memcpy-class; nothing to specialise
  }

  void plane_sums(const double* im, const double* ip, const double* jm,
                  const double* jp, const double* imm, const double* imp,
                  const double* ipm, const double* ipp, double* u1,
                  double* u2, extent_t n) const override {
    if (n >= kMinRow) {
      KernelKey k;
      k.prim = kPrimPlaneSums;
      k.length = n;
      if (KernelFn f = memo_request(k, make_plane_sums_prog)) {
        const double* in[8] = {im, ip, jm, jp, imm, imp, ipm, ipp};
        double* out[2] = {u1, u2};
        f(in, out, nullptr, nullptr);
        stats().jit_kernel_calls.bump();
        return;
      }
    }
    stats().jit_fallback_calls.bump();
    fb_.plane_sums(im, ip, jm, jp, imm, imp, ipm, ipp, u1, u2, n);
  }

  void combine_row(const double* c, const double* uc, const double* u1,
                   const double* u2, double* out, extent_t lo,
                   extent_t hi) const override {
    combine_impl(c, uc, u1, u2, out, lo, hi, false);
  }

  void accumulate_row(const double* c, const double* uc, const double* u1,
                      const double* u2, double* out, extent_t lo,
                      extent_t hi) const override {
    combine_impl(c, uc, u1, u2, out, lo, hi, true);
  }

  void stencil_row(const double* c, const double* uc, const double* im,
                   const double* ip, const double* jm, const double* jp,
                   const double* imm, const double* imp, const double* ipm,
                   const double* ipp, double* u1, double* u2, double* out,
                   extent_t lo, extent_t hi, extent_t n,
                   bool accumulate) const override {
    if (n >= kMinRow && n <= kMaxStencilRow && hi > lo) {
      KernelKey k;
      k.prim = kPrimStencil;
      k.accumulate = accumulate ? 1 : 0;
      k.length = n;
      k.lo = lo;
      k.hi = hi;
      std::memcpy(k.c, c, sizeof k.c);
      if (KernelFn f = memo_request(k, make_stencil_prog)) {
        const double* in[9] = {im, ip, jm, jp, imm, imp, ipm, ipp, uc};
        double* o[1] = {out};
        f(in, o, nullptr, nullptr);
        stats().jit_kernel_calls.bump();
        return;
      }
    }
    stats().jit_fallback_calls.bump();
    fb_.stencil_row(c, uc, im, ip, jm, jp, imm, imp, ipm, ipp, u1, u2, out,
                    lo, hi, n, accumulate);
  }

  void add_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    if (!ewise_impl(kPrimAddInto, make_add_prog, a, out, lo, hi)) {
      fb_.add_into_row(a, out, lo, hi);
    }
  }

  void sub_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    if (!ewise_impl(kPrimSubInto, make_sub_prog, a, out, lo, hi)) {
      fb_.sub_into_row(a, out, lo, hi);
    }
  }

  void mul_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    if (!ewise_impl(kPrimMulInto, make_mul_prog, a, out, lo, hi)) {
      fb_.mul_into_row(a, out, lo, hi);
    }
  }

  void gather_row(double* out, const double* src, extent_t stride,
                  extent_t n) const override {
    if (n >= kMinRow) {
      KernelKey k;
      k.prim = kPrimGather;
      k.length = n;
      k.stride = stride;
      if (KernelFn f = memo_request(k, make_gather_prog)) {
        const double* in[1] = {src};
        double* o[1] = {out};
        f(in, o, nullptr, nullptr);
        stats().jit_kernel_calls.bump();
        return;
      }
    }
    stats().jit_fallback_calls.bump();
    fb_.gather_row(out, src, stride, n);
  }

  void scatter_row(double* out, extent_t stride, const double* src,
                   extent_t n) const override {
    if (n >= kMinRow) {
      KernelKey k;
      k.prim = kPrimScatter;
      k.length = n;
      k.stride = stride;
      if (KernelFn f = memo_request(k, make_scatter_prog)) {
        const double* in[1] = {src};
        double* o[1] = {out};
        f(in, o, nullptr, nullptr);
        stats().jit_kernel_calls.bump();
        return;
      }
    }
    stats().jit_fallback_calls.bump();
    fb_.scatter_row(out, stride, src, n);
  }

  double sum_sq_row(double acc, const double* p, extent_t lo,
                    extent_t hi) const override {
    if (hi - lo >= kMinRow) {
      KernelKey k;
      k.prim = kPrimSumSq;
      k.length = hi - lo;
      if (KernelFn f = memo_request(k, make_sum_sq_prog)) {
        const double* in[1] = {p + lo};
        const double dargs[1] = {acc};
        double dres[1];
        f(in, nullptr, dargs, dres);
        stats().jit_kernel_calls.bump();
        return dres[0];
      }
    }
    stats().jit_fallback_calls.bump();
    return fb_.sum_sq_row(acc, p, lo, hi);
  }

  double max_abs_row(double acc, const double* p, extent_t lo,
                     extent_t hi) const override {
    if (hi - lo >= kMinRow) {
      KernelKey k;
      k.prim = kPrimMaxAbs;
      k.length = hi - lo;
      if (KernelFn f = memo_request(k, make_max_abs_prog)) {
        const double* in[1] = {p + lo};
        const double dargs[1] = {acc};
        double dres[1];
        f(in, nullptr, dargs, dres);
        stats().jit_kernel_calls.bump();
        return dres[0];
      }
    }
    stats().jit_fallback_calls.bump();
    return fb_.max_abs_row(acc, p, lo, hi);
  }

 private:
  void combine_impl(const double* c, const double* uc, const double* u1,
                    const double* u2, double* out, extent_t lo, extent_t hi,
                    bool accumulate) const {
    if (hi - lo >= kMinRow) {
      KernelKey k;
      k.prim = kPrimCombine;
      k.accumulate = accumulate ? 1 : 0;
      k.length = hi - lo;
      std::memcpy(k.c, c, sizeof k.c);
      if (KernelFn f = memo_request(k, make_combine_prog)) {
        const double* in[3] = {uc + lo, u1 + lo, u2 + lo};
        double* o[1] = {out + lo};
        f(in, o, nullptr, nullptr);
        stats().jit_kernel_calls.bump();
        return;
      }
    }
    stats().jit_fallback_calls.bump();
    if (accumulate) {
      fb_.accumulate_row(c, uc, u1, u2, out, lo, hi);
    } else {
      fb_.combine_row(c, uc, u1, u2, out, lo, hi);
    }
  }

  bool ewise_impl(std::uint8_t prim, RowProgram (*make)(const KernelKey&),
                  const double* a, double* out, extent_t lo,
                  extent_t hi) const {
    if (hi - lo >= kMinRow) {
      KernelKey k;
      k.prim = prim;
      k.length = hi - lo;
      if (KernelFn f = memo_request(k, make)) {
        const double* in[2] = {a + lo, out + lo};
        double* o[1] = {out + lo};
        f(in, o, nullptr, nullptr);
        stats().jit_kernel_calls.bump();
        return true;
      }
    }
    stats().jit_fallback_calls.bump();
    return false;
  }

  const Backend& fb_;  // the resolved kSimd engine
};

}  // namespace

namespace detail {
const Backend& jit_backend() noexcept {
  static const JitBackend be;
  return be;
}
}  // namespace detail

}  // namespace sacpp::sac
