#include "sacpp/sac/backend.hpp"

namespace sacpp::sac {

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

const Backend& backend_for(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScalar:
      return detail::scalar_backend();
    case BackendKind::kSimdPortable:
      return detail::portable_backend();
    case BackendKind::kSimd: {
      const Backend* avx2 = detail::avx2_backend();
      return avx2 != nullptr ? *avx2 : detail::portable_backend();
    }
  }
  return detail::scalar_backend();
}

}  // namespace sacpp::sac
