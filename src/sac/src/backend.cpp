#include "sacpp/sac/backend.hpp"

namespace sacpp::sac {

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

bool cpu_has_avx512() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const bool has = __builtin_cpu_supports("avx512f") != 0 &&
                          __builtin_cpu_supports("avx512dq") != 0 &&
                          __builtin_cpu_supports("avx512vl") != 0;
  return has;
#else
  return false;
#endif
}

// Default fused row: this engine's own two-pass sequence through the
// caller's scratch — the exact calls the planes stencil engine issued
// before the primitive existed, so composing engines are unchanged
// bit-for-bit and only fusing engines (the JIT) override.
void Backend::stencil_row(const double* c, const double* uc, const double* im,
                          const double* ip, const double* jm, const double* jp,
                          const double* imm, const double* imp,
                          const double* ipm, const double* ipp, double* u1,
                          double* u2, double* out, extent_t lo, extent_t hi,
                          extent_t n, bool accumulate) const {
  plane_sums(im, ip, jm, jp, imm, imp, ipm, ipp, u1, u2, n);
  if (accumulate) {
    accumulate_row(c, uc, u1, u2, out, lo, hi);
  } else {
    combine_row(c, uc, u1, u2, out, lo, hi);
  }
}

const Backend& backend_for(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScalar:
      return detail::scalar_backend();
    case BackendKind::kSimdPortable:
      return detail::portable_backend();
    case BackendKind::kSimd: {
      const Backend* avx512 = detail::avx512_backend();
      if (avx512 != nullptr) return *avx512;
      const Backend* avx2 = detail::avx2_backend();
      return avx2 != nullptr ? *avx2 : detail::portable_backend();
    }
    case BackendKind::kJit:
      return detail::jit_backend();
  }
  return detail::scalar_backend();
}

}  // namespace sacpp::sac
