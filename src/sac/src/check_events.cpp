#include "sacpp/sac/check_events.hpp"

#include <mutex>
#include <thread>

namespace sacpp::sac::check_detail {

std::atomic<std::int64_t> g_live_buffers{0};
std::atomic<bool> g_ownership_watch{false};

namespace {

// Event log.  Buffer events can arrive from worker threads (that is exactly
// the anomaly the ownership watch exists to catch), so the log is
// mutex-protected; the mutex is only ever taken in checked mode.
struct EventLog {
  std::mutex mutex;
  std::vector<BufferEvent> buffer_events;
  std::vector<RegionRecord> regions;
  std::vector<ChunkRecord> chunks;
  std::uint64_t region_counter = 0;
  std::uint64_t active_region = 0;
  std::thread::id coordinator;
};

EventLog& log() {
  static EventLog l;
  return l;
}

}  // namespace

void record_buffer_event(BufferEventKind kind, std::uint32_t refs) noexcept {
  try {
    EventLog& l = log();
    std::lock_guard<std::mutex> lock(l.mutex);
    l.buffer_events.push_back(BufferEvent{kind, refs, l.active_region});
  } catch (...) {
    // Out of memory while logging: drop the event rather than throw through
    // Buffer's noexcept ownership paths.
  }
}

void note_ownership_op(std::uint32_t refs) noexcept {
  // Only called while the watch is armed.  Ownership changes on the
  // coordinating thread are the designed-for pattern; anything else violates
  // the runtime's "workers never touch ownership" contract.
  if (std::this_thread::get_id() == log().coordinator) return;
  record_buffer_event(BufferEventKind::kForeignOwnershipOp, refs);
}

std::uint64_t begin_parallel_region(extent_t begin, extent_t end,
                                    extent_t align) noexcept {
  try {
    EventLog& l = log();
    std::lock_guard<std::mutex> lock(l.mutex);
    const std::uint64_t id = ++l.region_counter;
    l.active_region = id;
    l.coordinator = std::this_thread::get_id();
    l.regions.push_back(RegionRecord{id, begin, end, align});
    g_ownership_watch.store(true, std::memory_order_relaxed);
    return id;
  } catch (...) {
    return 0;
  }
}

void record_chunk(std::uint64_t region, unsigned worker, extent_t lo,
                  extent_t hi, bool write) noexcept {
  try {
    EventLog& l = log();
    std::lock_guard<std::mutex> lock(l.mutex);
    l.chunks.push_back(ChunkRecord{region, worker, lo, hi, write});
  } catch (...) {
  }
}

void end_parallel_region() noexcept {
  EventLog& l = log();
  g_ownership_watch.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(l.mutex);
  l.active_region = 0;
}

std::vector<BufferEvent> snapshot_buffer_events() {
  EventLog& l = log();
  std::lock_guard<std::mutex> lock(l.mutex);
  return l.buffer_events;
}

std::vector<RegionRecord> snapshot_region_records() {
  EventLog& l = log();
  std::lock_guard<std::mutex> lock(l.mutex);
  return l.regions;
}

std::vector<ChunkRecord> snapshot_chunk_records() {
  EventLog& l = log();
  std::lock_guard<std::mutex> lock(l.mutex);
  return l.chunks;
}

void clear_check_events() {
  EventLog& l = log();
  std::lock_guard<std::mutex> lock(l.mutex);
  l.buffer_events.clear();
  l.regions.clear();
  l.chunks.clear();
  l.active_region = 0;
}

}  // namespace sacpp::sac::check_detail
