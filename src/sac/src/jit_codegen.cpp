// RowProgram builders + C++ lowering for the JIT backend (docs/jit.md).
//
// The builders replicate the scalar engine's expression trees node for
// node (backend_scalar.cpp); the lowering walks those trees back into C++
// with every parameter a literal.  The only transformation between the two
// is the +0.0-coefficient elision documented in jit_ir.hpp — everything
// else is a faithful round trip, which is what makes the differential
// battery's bitwise assertions hold.

#include <array>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "sacpp/sac/jit_ir.hpp"

namespace sacpp::sac::jit {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void put_u8(std::vector<std::uint8_t>& b, std::uint8_t v) { b.push_back(v); }

void put_i64(std::vector<std::uint8_t>& b, std::int64_t v) {
  for (int i = 0; i < 8; ++i) {
    b.push_back(static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >>
                                          (8 * i)));
  }
}

// +0.0 exactly (not -0.0): the only coefficient value whose term the
// builders drop.
bool is_pos_zero(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof v);
  return bits == 0;
}

// The stencil combine r(k) with the scalar association
//   c0*uc[k] + c1*((u1[k]+uc[k-1])+uc[k+1])
//            + c2*((u2[k]+u1[k-1])+u1[k+1]) + c3*(u2[k-1]+u2[k+1])
// summed left-to-right over the surviving terms.  `u1`/`u2` are produced
// by `row1`/`row2`, node factories so the same shape serves the unfused
// combine (u1/u2 are input rows) and the fused stencil row (derived rows).
template <typename RowRefC, typename RowRef1, typename RowRef2>
std::int32_t build_combine_expr(RowProgram& p, const double c[4], RowRefC uc,
                                RowRef1 u1, RowRef2 u2) {
  std::int32_t terms[4] = {-1, -1, -1, -1};
  if (!is_pos_zero(c[0])) {
    terms[0] = p.bin(Op::kMul, p.constant(c[0]), uc(p, 0));
  }
  if (!is_pos_zero(c[1])) {
    std::int32_t g = p.bin(Op::kAdd, p.bin(Op::kAdd, u1(p, 0), uc(p, -1)),
                           uc(p, 1));
    terms[1] = p.bin(Op::kMul, p.constant(c[1]), g);
  }
  if (!is_pos_zero(c[2])) {
    std::int32_t g = p.bin(Op::kAdd, p.bin(Op::kAdd, u2(p, 0), u1(p, -1)),
                           u1(p, 1));
    terms[2] = p.bin(Op::kMul, p.constant(c[2]), g);
  }
  if (!is_pos_zero(c[3])) {
    std::int32_t g = p.bin(Op::kAdd, u2(p, -1), u2(p, 1));
    terms[3] = p.bin(Op::kMul, p.constant(c[3]), g);
  }
  std::int32_t expr = -1;
  for (std::int32_t t : terms) {
    if (t < 0) continue;
    expr = expr < 0 ? t : p.bin(Op::kAdd, expr, t);
  }
  // All four coefficients zero never happens in MG, but keep it total.
  return expr >= 0 ? expr : p.constant(0.0);
}

// u1[k] = ((in0+in1)+in2)+in3 — the plane-sum association.
std::int32_t build_plane_sum(RowProgram& p, int i0, int i1, int i2, int i3) {
  return p.bin(Op::kAdd,
               p.bin(Op::kAdd, p.bin(Op::kAdd, p.load(i0), p.load(i1)),
                     p.load(i2)),
               p.load(i3));
}

}  // namespace

std::vector<std::uint8_t> RowProgram::serialize() const {
  std::vector<std::uint8_t> b;
  b.reserve(64 + nodes.size() * 20);
  put_u8(b, 1);  // IR version — bump when lowering semantics change
  put_u8(b, static_cast<std::uint8_t>(pattern));
  put_u8(b, num_inputs);
  put_u8(b, num_outputs);
  put_u8(b, accumulate);
  put_u8(b, restrict_rows);
  put_i64(b, length);
  put_i64(b, lo);
  put_i64(b, hi);
  put_i64(b, stride);
  put_i64(b, static_cast<std::int64_t>(nodes.size()));
  for (const Node& n : nodes) {
    put_u8(b, static_cast<std::uint8_t>(n.op));
    put_i64(b, n.input);
    put_i64(b, n.offset);
    put_i64(b, static_cast<std::int64_t>(n.bits));
    put_i64(b, n.a);
    put_i64(b, n.b);
  }
  put_i64(b, static_cast<std::int64_t>(roots.size()));
  for (std::int32_t r : roots) put_i64(b, r);
  put_i64(b, static_cast<std::int64_t>(derived.size()));
  for (std::int32_t d : derived) put_i64(b, d);
  return b;
}

std::uint64_t RowProgram::hash() const {
  std::uint64_t h = kFnvOffset;
  for (std::uint8_t byte : serialize()) {
    h ^= byte;
    h *= kFnvPrime;
  }
  return h;
}

// -- builders ----------------------------------------------------------------

RowProgram make_plane_sums(std::int64_t n) {
  RowProgram p;
  p.pattern = Pattern::kMap;
  p.num_inputs = 8;
  p.num_outputs = 2;
  p.restrict_rows = 1;  // the nine stencil rows are pairwise disjoint
  p.length = n;
  p.roots.push_back(build_plane_sum(p, 0, 1, 2, 3));
  p.roots.push_back(build_plane_sum(p, 4, 5, 6, 7));
  return p;
}

RowProgram make_combine(const double c[4], bool accumulate, std::int64_t L) {
  RowProgram p;
  p.pattern = Pattern::kMap;
  p.num_inputs = 3;  // uc, u1, u2 — pre-offset, readable at -1..+1
  p.num_outputs = 1;
  p.accumulate = accumulate ? 1 : 0;
  p.restrict_rows = 1;
  p.length = L;
  auto in = [](int slot) {
    return [slot](RowProgram& q, int off) { return q.load(slot, off); };
  };
  p.roots.push_back(build_combine_expr(p, c, in(0), in(1), in(2)));
  return p;
}

RowProgram make_stencil_row(const double c[4], bool accumulate,
                            std::int64_t lo, std::int64_t hi,
                            std::int64_t n) {
  RowProgram p;
  p.pattern = Pattern::kStencil;
  p.num_inputs = 9;  // im, ip, jm, jp, imm, imp, ipm, ipp, uc
  p.num_outputs = 1;
  p.accumulate = accumulate ? 1 : 0;
  p.restrict_rows = 1;
  p.length = n;
  p.lo = lo;
  p.hi = hi;
  p.derived.push_back(build_plane_sum(p, 0, 1, 2, 3));
  p.derived.push_back(build_plane_sum(p, 4, 5, 6, 7));
  auto uc = [](RowProgram& q, int off) { return q.load(8, off); };
  auto u1 = [](RowProgram& q, int off) { return q.drow(0, off); };
  auto u2 = [](RowProgram& q, int off) { return q.drow(1, off); };
  p.roots.push_back(build_combine_expr(p, c, uc, u1, u2));
  return p;
}

RowProgram make_ewise(Op op, std::int64_t L) {
  RowProgram p;
  p.pattern = Pattern::kMap;
  p.num_inputs = 2;  // in[0] = a, in[1] = out's current value
  p.num_outputs = 1;
  p.restrict_rows = 0;  // a and out may alias (x op= x)
  p.length = L;
  p.roots.push_back(p.bin(op, p.load(0), p.load(1)));
  return p;
}

RowProgram make_gather(std::int64_t stride, std::int64_t n) {
  RowProgram p;
  p.pattern = Pattern::kGather;
  p.num_inputs = 1;
  p.num_outputs = 1;
  p.restrict_rows = 1;
  p.length = n;
  p.stride = stride;
  p.roots.push_back(p.load(0));
  return p;
}

RowProgram make_scatter(std::int64_t stride, std::int64_t n) {
  RowProgram p;
  p.pattern = Pattern::kScatter;
  p.num_inputs = 1;
  p.num_outputs = 1;
  p.restrict_rows = 1;
  p.length = n;
  p.stride = stride;
  p.roots.push_back(p.load(0));
  return p;
}

RowProgram make_sum_sq(std::int64_t L) {
  RowProgram p;
  p.pattern = Pattern::kSumSq;
  p.num_inputs = 1;
  p.num_outputs = 0;
  p.restrict_rows = 1;
  p.length = L;
  p.roots.push_back(p.bin(Op::kMul, p.load(0), p.load(0)));
  return p;
}

RowProgram make_max_abs(std::int64_t L) {
  RowProgram p;
  p.pattern = Pattern::kMaxAbs;
  p.num_inputs = 1;
  p.num_outputs = 0;
  p.restrict_rows = 1;
  p.length = L;
  p.roots.push_back(p.load(0));  // |x| is part of the fold skeleton
  return p;
}

// -- lowering ----------------------------------------------------------------

namespace {

void append(std::string& s, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void append(std::string& s, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  s += buf;
}

// Exact double literal: %a round-trips every finite value bit-for-bit.
std::string double_lit(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

// Emit node `id` as a C expression over row locals i<slot>/d<slot> and
// induction variable k.  `inlined` flags derived rows that are NOT
// materialised into a stack array: a reference to one (always at offset 0)
// expands to the derived row's defining expression in place — textually
// identical to what the fill loop would have stored, so results stay
// bit-for-bit equal.
void emit_expr(std::string& s, const RowProgram& p, std::int32_t id,
               const std::vector<bool>* inlined = nullptr) {
  const Node& n = p.nodes[static_cast<std::size_t>(id)];
  switch (n.op) {
    case Op::kLoad:
    case Op::kDerived: {
      if (n.op == Op::kDerived && inlined != nullptr &&
          (*inlined)[static_cast<std::size_t>(n.input)]) {
        emit_expr(s, p, p.derived[static_cast<std::size_t>(n.input)], inlined);
        return;
      }
      const char* base = n.op == Op::kLoad ? "i" : "d";
      if (n.offset == 0) {
        append(s, "%s%d[k]", base, n.input);
      } else {
        append(s, "%s%d[k%+d]", base, n.input, n.offset);
      }
      return;
    }
    case Op::kConst:
      s += double_lit(n.bits);
      return;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul: {
      const char op = n.op == Op::kAdd ? '+' : n.op == Op::kSub ? '-' : '*';
      s += '(';
      emit_expr(s, p, n.a, inlined);
      append(s, " %c ", op);
      emit_expr(s, p, n.b, inlined);
      s += ')';
      return;
    }
  }
}

void emit_row_binds(std::string& s, const RowProgram& p) {
  const char* rq = p.restrict_rows ? " __restrict" : "";
  for (int i = 0; i < p.num_inputs; ++i) {
    append(s, "  const double*%s i%d = in[%d];\n", rq, i, i);
  }
  for (int o = 0; o < p.num_outputs; ++o) {
    append(s, "  double*%s o%d = out[%d];\n", rq, o, o);
  }
}

// No-loop-carried-dependence pragma for programs whose rows never alias.
// __restrict on the bound locals is not enough: GCC only honours it via
// runtime alias versioning, and above ~10 pointer pairs (plane_sums has
// ten rows) it silently gives up and emits a scalar loop.  The pragma
// removes the alias question instead of versioning around it.
void emit_ivdep(std::string& s, const RowProgram& p) {
  if (!p.restrict_rows) return;
  s += "#if defined(__clang__)\n"
       "#pragma clang loop vectorize(assume_safety)\n"
       "#else\n"
       "#pragma GCC ivdep\n"
       "#endif\n";
}

// ---- AVX-512 pipelined stencil lowering -----------------------------------
//
// On hosts with AVX-512 the stencil pattern is lowered to explicit
// intrinsics instead of the autovectorised two-pass form: the derived
// plane-sum rows live in registers and flow across 8-wide blocks (prev /
// current / next), with the +/-1 references built by 64-bit lane shifts
// (valignq) instead of stack-array reloads.  Each plane sum is still
// computed exactly once per element with the identical ((a+b)+c)+d tree,
// and the combine tree is translated node for node, so results stay
// bit-for-bit equal to every other engine — the vectorisation only removes
// the memory round trip.  Masked loads/stores handle the block at the
// boundary; masked-off lanes never fault and never reach a store.

// True when every row reference sits at offset -1, 0, or +1 — the contract
// the register pipeline depends on.  Always true for make_stencil_row
// today; guards any future wider-radius builder.
bool unit_offsets(const RowProgram& p) {
  for (const Node& n : p.nodes) {
    if ((n.op == Op::kLoad || n.op == Op::kDerived) &&
        (n.offset < -1 || n.offset > 1)) {
      return false;
    }
  }
  return true;
}

struct VecCtx {
  const RowProgram& p;
  const std::vector<bool>& inlined;  // derived rows expanded at offset 0
  const char* mask;                  // __mmask8 expression, or nullptr
  int shift;                         // added to every load offset
  // Inputs carried in the register pipeline (combine-loop context only;
  // nullptr in the plane-sum fill contexts, which always load at k+8).
  const std::vector<bool>* lpipe = nullptr;
};

// Emit node `id` as an __m512d expression for the block starting at k.
void emit_vec_expr(std::string& s, const VecCtx& cx, std::int32_t id) {
  const Node& n = cx.p.nodes[static_cast<std::size_t>(id)];
  switch (n.op) {
    case Op::kLoad: {
      if (cx.lpipe != nullptr &&
          (*cx.lpipe)[static_cast<std::size_t>(n.input)]) {
        if (n.offset < 0) {
          append(s, "l%dm", n.input);
        } else if (n.offset > 0) {
          append(s, "l%dp", n.input);
        } else {
          append(s, "cl%d", n.input);
        }
        return;
      }
      const int off = n.offset + cx.shift;
      if (cx.mask != nullptr) {
        append(s, "_mm512_maskz_loadu_pd(%s, i%d + k%+d)", cx.mask, n.input,
               off);
      } else {
        append(s, "_mm512_loadu_pd(i%d + k%+d)", n.input, off);
      }
      return;
    }
    case Op::kDerived: {
      if (cx.inlined[static_cast<std::size_t>(n.input)]) {
        emit_vec_expr(s, cx, cx.p.derived[static_cast<std::size_t>(n.input)]);
        return;
      }
      if (n.offset < 0) {
        append(s, "d%dm", n.input);
      } else if (n.offset > 0) {
        append(s, "d%dp", n.input);
      } else {
        append(s, "c%dv", n.input);
      }
      return;
    }
    case Op::kConst:
      append(s, "_mm512_set1_pd(%s)", double_lit(n.bits).c_str());
      return;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul: {
      const char* fn = n.op == Op::kAdd   ? "_mm512_add_pd"
                       : n.op == Op::kSub ? "_mm512_sub_pd"
                                          : "_mm512_mul_pd";
      append(s, "%s(", fn);
      emit_vec_expr(s, cx, n.a);
      s += ", ";
      emit_vec_expr(s, cx, n.b);
      s += ")";
      return;
    }
  }
}

// One pipelined block: fetch the next plane-sum vectors, build the +/-1
// shifts, evaluate the combine tree, store, rotate.  `masked` selects the
// boundary form (runtime sm/nm masks) used by the epilogue loop.
void emit_stencil_block(std::string& s, const RowProgram& p,
                        const std::vector<bool>& inlined,
                        const std::vector<std::array<bool, 3>>& used,
                        const std::vector<std::array<bool, 3>>& lused,
                        const std::vector<bool>& lpipe, bool masked) {
  for (std::size_t d = 0; d < p.derived.size(); ++d) {
    if (inlined[d]) continue;
    append(s, "    __m512d n%zu = ", d);
    VecCtx fill{p, inlined, masked ? "nm" : nullptr, 8};
    emit_vec_expr(s, fill, p.derived[d]);
    s += ";\n";
    if (used[d][0]) {
      append(s, "    __m512d d%zum = SACPP_ALIGN(c%zuv, p%zu, 7);\n", d, d, d);
    }
    if (used[d][2]) {
      append(s, "    __m512d d%zup = SACPP_ALIGN(n%zu, c%zuv, 1);\n", d, d, d);
    }
  }
  for (std::size_t i = 0; i < lpipe.size(); ++i) {
    if (!lpipe[i]) continue;
    if (masked) {
      append(s, "    __m512d nl%zu = _mm512_maskz_loadu_pd(nm, i%zu + k+8);\n",
             i, i);
    } else {
      append(s, "    __m512d nl%zu = _mm512_loadu_pd(i%zu + k+8);\n", i, i);
    }
    if (lused[i][0]) {
      append(s, "    __m512d l%zum = SACPP_ALIGN(cl%zu, pl%zu, 7);\n", i, i, i);
    }
    if (lused[i][2]) {
      append(s, "    __m512d l%zup = SACPP_ALIGN(nl%zu, cl%zu, 1);\n", i, i, i);
    }
  }
  append(s, "    __m512d t = ");
  VecCtx root{p, inlined, masked ? "sm" : nullptr, 0, &lpipe};
  emit_vec_expr(s, root, p.roots[0]);
  s += ";\n";
  if (p.accumulate) {
    if (masked) {
      s += "    t = _mm512_add_pd(_mm512_maskz_loadu_pd(sm, o0 + k), t);\n";
    } else {
      s += "    t = _mm512_add_pd(_mm512_loadu_pd(o0 + k), t);\n";
    }
  }
  s += masked ? "    _mm512_mask_storeu_pd(o0 + k, sm, t);\n"
              : "    _mm512_storeu_pd(o0 + k, t);\n";
  for (std::size_t d = 0; d < p.derived.size(); ++d) {
    if (inlined[d]) continue;
    append(s, "    p%zu = c%zuv; c%zuv = n%zu;\n", d, d, d, d);
  }
  for (std::size_t i = 0; i < lpipe.size(); ++i) {
    if (!lpipe[i]) continue;
    append(s, "    pl%zu = cl%zu; cl%zu = nl%zu;\n", i, i, i, i);
  }
}

void emit_stencil_avx512(std::string& s, const RowProgram& p,
                         const std::vector<bool>& inlined) {
  std::vector<std::array<bool, 3>> used(p.derived.size(),
                                        std::array<bool, 3>{});
  // Inputs referenced at +/-1 in the combine tree (only the centre row uc
  // can be, by construction) ride the same register pipeline as the derived
  // rows: one aligned load per block replaces three overlapping ones.
  std::vector<std::array<bool, 3>> lused(
      static_cast<std::size_t>(p.num_inputs), std::array<bool, 3>{});
  for (const Node& n : p.nodes) {
    if (n.op == Op::kDerived && !inlined[static_cast<std::size_t>(n.input)]) {
      used[static_cast<std::size_t>(n.input)]
          [static_cast<std::size_t>(n.offset + 1)] = true;
    }
    if (n.op == Op::kLoad) {
      lused[static_cast<std::size_t>(n.input)]
          [static_cast<std::size_t>(n.offset + 1)] = true;
    }
  }
  std::vector<bool> lpipe(static_cast<std::size_t>(p.num_inputs), false);
  for (std::size_t i = 0; i < lpipe.size(); ++i) {
    lpipe[i] = lused[i][0] || lused[i][2];
  }
  const long long lo = static_cast<long long>(p.lo);
  const long long hi = static_cast<long long>(p.hi);
  const long long n = static_cast<long long>(p.length);
  // Prologue masks are compile-time constants: prev covers [lo-8, lo-1]
  // (only lanes with a valid index load; only lane 7, element lo-1, is ever
  // consumed by the shift), current covers [lo, lo+7] clipped to n.
  unsigned pm = 0, cm = 0;
  for (int l = 0; l < 8; ++l) {
    if (lo - 8 + l >= 0 && lo - 8 + l < n) pm |= 1u << l;
    if (lo + l < n) cm |= 1u << l;
  }
  char pmask[24], cmask[24];
  std::snprintf(pmask, sizeof pmask, "(__mmask8)0x%02x", pm);
  std::snprintf(cmask, sizeof cmask, "(__mmask8)0x%02x", cm);
  append(s, "  long k = %lldL;\n", lo);
  for (std::size_t d = 0; d < p.derived.size(); ++d) {
    if (inlined[d]) continue;
    append(s, "  __m512d p%zu = ", d);
    VecCtx prev{p, inlined, pmask, -8};
    emit_vec_expr(s, prev, p.derived[d]);
    s += ";\n";
    append(s, "  __m512d c%zuv = ", d);
    VecCtx cur{p, inlined, cmask, 0};
    emit_vec_expr(s, cur, p.derived[d]);
    s += ";\n";
  }
  for (std::size_t i = 0; i < lpipe.size(); ++i) {
    if (!lpipe[i]) continue;
    append(s, "  __m512d pl%zu = _mm512_maskz_loadu_pd(%s, i%zu + k-8);\n", i,
           pmask, i);
    append(s, "  __m512d cl%zu = _mm512_maskz_loadu_pd(%s, i%zu + k+0);\n", i,
           cmask, i);
  }
  // Main loop: full-width stores need k+8 <= hi, unmasked next-block loads
  // need k+16 <= n; root loads at +/-1 are covered by those two.
  const long long kmax = hi - 8 < n - 16 ? hi - 8 : n - 16;
  append(s, "  for (; k <= %lldL; k += 8) {\n", kmax);
  emit_stencil_block(s, p, inlined, used, lused, lpipe, /*masked=*/false);
  s += "  }\n";
  append(s, "  for (; k < %lldL; k += 8) {\n", hi);
  append(s, "    const long rem = %lldL - k;\n", hi);
  s += "    const __mmask8 sm =\n"
       "        rem >= 8 ? (__mmask8)0xff : (__mmask8)((1u << rem) - 1u);\n";
  append(s, "    const long nr = %lldL - (k + 8);\n", n);
  s += "    const __mmask8 nm = nr <= 0 ? (__mmask8)0\n"
       "                        : nr >= 8 ? (__mmask8)0xff\n"
       "                                  : (__mmask8)((1u << nr) - 1u);\n";
  emit_stencil_block(s, p, inlined, used, lused, lpipe, /*masked=*/true);
  s += "  }\n";
}

// The portable 4-lane fold skeleton (backend_simd.cpp's
// sum_sq_row_portable / max_abs_row_portable with the length baked in).
void emit_fold(std::string& s, const RowProgram& p) {
  const bool max = p.pattern == Pattern::kMaxAbs;
  std::string e[4];
  for (int lane = 0; lane < 4; ++lane) {
    std::string x;
    emit_expr(x, p, p.roots[0]);
    // The fold element for lane `lane` of a block starting at k.
    std::string shifted;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x.compare(i, 3, "[k]") == 0 && lane > 0) {
        shifted += "[k+";
        shifted += static_cast<char>('0' + lane);
        shifted += ']';
        i += 2;
      } else {
        shifted += x[i];
      }
    }
    e[lane] = max ? "__builtin_fabs(" + shifted + ")" : shifted;
  }
  append(s, "  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;\n");
  append(s, "  long k = 0;\n");
  append(s, "  for (; k + 4 <= %lldL; k += 4) {\n",
         static_cast<long long>(p.length));
  for (int lane = 0; lane < 4; ++lane) {
    if (max) {
      append(s, "    { const double x = %s; l%d = l%d > x ? l%d : x; }\n",
             e[lane].c_str(), lane, lane, lane);
    } else {
      append(s, "    l%d = l%d + %s;\n", lane, lane, e[lane].c_str());
    }
  }
  append(s, "  }\n");
  for (int lane = 0; lane < 3; ++lane) {
    append(s, "  if (k + %d < %lldL) ", lane,
           static_cast<long long>(p.length));
    if (max) {
      append(s, "{ const double x = %s; l%d = l%d > x ? l%d : x; }\n",
             e[lane].c_str(), lane, lane, lane);
    } else {
      append(s, "l%d = l%d + %s;\n", lane, lane, e[lane].c_str());
    }
  }
  if (max) {
    append(s, "  double r = dargs[0];\n");
    for (int lane = 0; lane < 4; ++lane) {
      append(s, "  r = r > l%d ? r : l%d;\n", lane, lane);
    }
    append(s, "  dres[0] = r;\n");
  } else {
    append(s, "  dres[0] = dargs[0] + (((l0 + l1) + l2) + l3);\n");
  }
}

}  // namespace

std::string generate_source(const RowProgram& p) {
  std::string s;
  append(s, "// generated by sacpp jit (IR v1, hash %016llx)\n",
         static_cast<unsigned long long>(p.hash()));
  // Stencil programs get the hand-pipelined AVX-512 form when the build
  // host has it; the preprocessor guard keeps one generated source valid
  // for any -march the compile flags resolve to.
  // restrict_rows is required: the pipeline keeps input values in registers
  // across the output stores, which is only equivalent when they can't alias.
  const bool vec = p.pattern == Pattern::kStencil && p.num_outputs == 1 &&
                   p.restrict_rows && unit_offsets(p);
  if (vec) {
    s += "#if defined(__AVX512F__)\n"
         "#include <immintrin.h>\n"
         "#define SACPP_ALIGN(a, b, imm)                                  \\\n"
         "  _mm512_castsi512_pd(_mm512_alignr_epi64(                      \\\n"
         "      _mm512_castpd_si512(a), _mm512_castpd_si512(b), (imm)))\n"
         "#endif\n";
  }
  s += "extern \"C\" void sacpp_jit_kernel(const double* const* in,\n"
       "                                 double* const* out,\n"
       "                                 const double* dargs,\n"
       "                                 double* dres) {\n"
       "  (void)in; (void)out; (void)dargs; (void)dres;\n";
  const long long L = static_cast<long long>(p.length);
  switch (p.pattern) {
    case Pattern::kMap: {
      emit_row_binds(s, p);
      emit_ivdep(s, p);
      append(s, "  for (long k = 0; k < %lldL; ++k) {\n", L);
      for (int o = 0; o < p.num_outputs; ++o) {
        append(s, "    o%d[k] %s= ", o, p.accumulate ? "+" : "");
        emit_expr(s, p, p.roots[static_cast<std::size_t>(o)]);
        s += ";\n";
      }
      s += "  }\n";
      break;
    }
    case Pattern::kStencil: {
      // Two passes, both vectorisable: one loop materialises the derived
      // plane-sum rows into stack arrays (each element computed exactly
      // once), then the combine loop reads them at +/-1 offsets.  Fully
      // inlining the derived sums into one pass was measured slower here —
      // it re-evaluates each plane sum at three offsets, ~2x the arithmetic
      // — and the stack rows stay in L1 for any row the dispatch cap
      // admits.  The exception: a derived row referenced only at offset 0
      // (e.g. the diagonal sum when coefficient elision drops its +/-1
      // terms) is inlined instead of materialised, saving its fill-loop
      // stores and combine-loop reloads; the inlined expression is the
      // identical tree, so numerics are unchanged.
      emit_row_binds(s, p);
      std::vector<bool> inlined(p.derived.size(), true);
      for (const Node& n : p.nodes) {
        if (n.op == Op::kDerived && n.offset != 0) {
          inlined[static_cast<std::size_t>(n.input)] = false;
        }
      }
      if (vec) {
        s += "#if defined(__AVX512F__)\n";
        emit_stencil_avx512(s, p, inlined);
        s += "#else\n";
      }
      bool any_materialised = false;
      for (std::size_t d = 0; d < p.derived.size(); ++d) {
        if (inlined[d]) continue;
        append(s, "  double d%zu[%lld];\n", d, L);
        any_materialised = true;
      }
      if (any_materialised) {
        emit_ivdep(s, p);
        append(s, "  for (long k = 0; k < %lldL; ++k) {\n", L);
        for (std::size_t d = 0; d < p.derived.size(); ++d) {
          if (inlined[d]) continue;
          append(s, "    d%zu[k] = ", d);
          emit_expr(s, p, p.derived[d]);
          s += ";\n";
        }
        s += "  }\n";
      }
      emit_ivdep(s, p);
      append(s, "  for (long k = %lldL; k < %lldL; ++k) {\n",
             static_cast<long long>(p.lo), static_cast<long long>(p.hi));
      append(s, "    o0[k] %s= ", p.accumulate ? "+" : "");
      emit_expr(s, p, p.roots[0], &inlined);
      s += ";\n  }\n";
      if (vec) s += "#endif\n";
      break;
    }
    case Pattern::kGather: {
      emit_row_binds(s, p);
      emit_ivdep(s, p);
      append(s,
             "  for (long k = 0; k < %lldL; ++k) o0[k] = i0[k * %lldL];\n",
             L, static_cast<long long>(p.stride));
      break;
    }
    case Pattern::kScatter: {
      emit_row_binds(s, p);
      emit_ivdep(s, p);
      append(s,
             "  for (long k = 0; k < %lldL; ++k) o0[k * %lldL] = i0[k];\n",
             L, static_cast<long long>(p.stride));
      break;
    }
    case Pattern::kSumSq:
    case Pattern::kMaxAbs: {
      emit_row_binds(s, p);
      emit_fold(s, p);
      break;
    }
  }
  s += "}\n";
  return s;
}

}  // namespace sacpp::sac::jit
