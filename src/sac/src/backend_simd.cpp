// The kSimd engines: AVX-512 and AVX2 row engines plus the 4-wide portable
// fallback.
//
// All are compiled unconditionally — the vector functions carry
// __attribute__((target("avx2"))) / target("avx512f,avx512dq,avx512vl") so
// the translation unit builds at the baseline -march, and backend.cpp
// dispatches at runtime via CPUID (widest first).  The engines are
// bit-identical to each other by construction:
//  * element-parallel primitives keep the scalar association order per
//    element (so they are bit-identical to kScalar too), whether they run
//    4 or 8 lanes at a time;
//  * folds use the same fixed 4-lane structure in every engine (element
//    lo+n lands in lane n%4, masked tail lanes contribute the neutral 0.0)
//    and the same horizontal combine ((l0+l1)+l2)+l3 — the AVX-512 engine
//    deliberately folds through the portable 4-lane code rather than 8
//    zmm lanes, so kSimd fold results do not depend on the host CPU;
//  * no FMA: explicit mul/add intrinsics, and the build pins
//    -ffp-contract=off on this file (AVX-512 brings zmm FMA into the ISA,
//    so the target attribute alone would no longer prevent contraction).
// Tail handling is masked (maskload/maskstore/AVX-512 mask registers),
// never a separate code path: masked lanes are architecturally not
// accessed, so reading a partial vector at the end of a row cannot fault
// or trip ASan.

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SACPP_HAVE_AVX2_TARGET 1
#define SACPP_HAVE_AVX512_TARGET 1
#endif

#include "sacpp/sac/backend.hpp"

namespace sacpp::sac {
namespace {

// -- shared element-parallel loops (association order == kScalar) ------------

void fill_row_generic(double* out, extent_t lo, extent_t hi, double v) {
  std::fill(out + lo, out + hi, v);
}

void copy_row_generic(double* out, const double* src, extent_t lo,
                      extent_t hi) {
  if (hi > lo) {
    std::memcpy(out + lo, src,
                static_cast<std::size_t>(hi - lo) * sizeof(double));
  }
}

void plane_sums_generic(const double* im, const double* ip, const double* jm,
                        const double* jp, const double* imm,
                        const double* imp, const double* ipm,
                        const double* ipp, double* u1, double* u2,
                        extent_t n) {
  const double* __restrict rim = im;
  const double* __restrict rip = ip;
  const double* __restrict rjm = jm;
  const double* __restrict rjp = jp;
  const double* __restrict rimm = imm;
  const double* __restrict rimp = imp;
  const double* __restrict ripm = ipm;
  const double* __restrict ripp = ipp;
  double* __restrict w1 = u1;
  double* __restrict w2 = u2;
  for (extent_t k = 0; k < n; ++k) {
    w1[k] = ((rim[k] + rip[k]) + rjm[k]) + rjp[k];
    w2[k] = ((rimm[k] + rimp[k]) + ripm[k]) + ripp[k];
  }
}

void combine_row_generic(const double* c, const double* uc, const double* u1,
                         const double* u2, double* out, extent_t lo,
                         extent_t hi) {
  const double* __restrict rc = uc;
  const double* __restrict r1 = u1;
  const double* __restrict r2 = u2;
  double* __restrict o = out;
  for (extent_t k = lo; k < hi; ++k) {
    o[k] = c[0] * rc[k] + c[1] * ((r1[k] + rc[k - 1]) + rc[k + 1]) +
           c[2] * ((r2[k] + r1[k - 1]) + r1[k + 1]) +
           c[3] * (r2[k - 1] + r2[k + 1]);
  }
}

void accumulate_row_generic(const double* c, const double* uc,
                            const double* u1, const double* u2, double* out,
                            extent_t lo, extent_t hi) {
  const double* __restrict rc = uc;
  const double* __restrict r1 = u1;
  const double* __restrict r2 = u2;
  double* __restrict o = out;
  for (extent_t k = lo; k < hi; ++k) {
    o[k] += c[0] * rc[k] + c[1] * ((r1[k] + rc[k - 1]) + rc[k + 1]) +
            c[2] * ((r2[k] + r1[k - 1]) + r1[k + 1]) +
            c[3] * (r2[k - 1] + r2[k + 1]);
  }
}

void gather_row_generic(double* out, const double* src, extent_t stride,
                        extent_t n) {
  for (extent_t t = 0; t < n; ++t) out[t] = src[t * stride];
}

void scatter_row_generic(double* out, extent_t stride, const double* src,
                         extent_t n) {
  for (extent_t t = 0; t < n; ++t) out[t * stride] = src[t];
}

// -- portable 4-wide folds (the lane contract of the header) -----------------
//
// max lane combine matches the AVX2 maxpd operand order exactly:
// maxpd(a, b) = (a > b) ? a : b, second operand on ties/NaN.

inline double lane_max(double a, double b) { return a > b ? a : b; }

double sum_sq_row_portable(double acc, const double* p, extent_t lo,
                           extent_t hi) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  extent_t k = lo;
  for (; k + 4 <= hi; k += 4) {
    l0 = l0 + p[k] * p[k];
    l1 = l1 + p[k + 1] * p[k + 1];
    l2 = l2 + p[k + 2] * p[k + 2];
    l3 = l3 + p[k + 3] * p[k + 3];
  }
  // Masked tail: live lanes take their element, dead lanes add the fold's
  // neutral 0.0 (a no-op on the non-negative lane sums).
  if (k < hi) l0 = l0 + p[k] * p[k];
  if (k + 1 < hi) l1 = l1 + p[k + 1] * p[k + 1];
  if (k + 2 < hi) l2 = l2 + p[k + 2] * p[k + 2];
  return acc + (((l0 + l1) + l2) + l3);
}

double max_abs_row_portable(double acc, const double* p, extent_t lo,
                            extent_t hi) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  extent_t k = lo;
  for (; k + 4 <= hi; k += 4) {
    l0 = lane_max(l0, std::fabs(p[k]));
    l1 = lane_max(l1, std::fabs(p[k + 1]));
    l2 = lane_max(l2, std::fabs(p[k + 2]));
    l3 = lane_max(l3, std::fabs(p[k + 3]));
  }
  if (k < hi) l0 = lane_max(l0, std::fabs(p[k]));
  if (k + 1 < hi) l1 = lane_max(l1, std::fabs(p[k + 1]));
  if (k + 2 < hi) l2 = lane_max(l2, std::fabs(p[k + 2]));
  return lane_max(lane_max(lane_max(lane_max(acc, l0), l1), l2), l3);
}

#ifdef SACPP_HAVE_AVX2_TARGET

// -- AVX2 kernels ------------------------------------------------------------

// Mask with the low `r` lanes live (r in [1, 3]) for maskload/maskstore.
__attribute__((target("avx2"))) inline __m256i tail_mask(extent_t r) {
  const __m256i idx = _mm256_set_epi64x(3, 2, 1, 0);
  return _mm256_cmpgt_epi64(_mm256_set1_epi64x(r), idx);
}

__attribute__((target("avx2"))) void fill_row_avx2(double* out, extent_t lo,
                                                   extent_t hi, double v) {
  const __m256d vv = _mm256_set1_pd(v);
  extent_t k = lo;
  for (; k + 4 <= hi; k += 4) _mm256_storeu_pd(out + k, vv);
  if (k < hi) _mm256_maskstore_pd(out + k, tail_mask(hi - k), vv);
}

__attribute__((target("avx2"))) void plane_sums_avx2(
    const double* im, const double* ip, const double* jm, const double* jp,
    const double* imm, const double* imp, const double* ipm,
    const double* ipp, double* u1, double* u2, extent_t n) {
  extent_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d s1 = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(_mm256_loadu_pd(im + k),
                                    _mm256_loadu_pd(ip + k)),
                      _mm256_loadu_pd(jm + k)),
        _mm256_loadu_pd(jp + k));
    const __m256d s2 = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(_mm256_loadu_pd(imm + k),
                                    _mm256_loadu_pd(imp + k)),
                      _mm256_loadu_pd(ipm + k)),
        _mm256_loadu_pd(ipp + k));
    _mm256_storeu_pd(u1 + k, s1);
    _mm256_storeu_pd(u2 + k, s2);
  }
  if (k < n) {
    const __m256i m = tail_mask(n - k);
    const __m256d s1 = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(_mm256_maskload_pd(im + k, m),
                                    _mm256_maskload_pd(ip + k, m)),
                      _mm256_maskload_pd(jm + k, m)),
        _mm256_maskload_pd(jp + k, m));
    const __m256d s2 = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(_mm256_maskload_pd(imm + k, m),
                                    _mm256_maskload_pd(imp + k, m)),
                      _mm256_maskload_pd(ipm + k, m)),
        _mm256_maskload_pd(ipp + k, m));
    _mm256_maskstore_pd(u1 + k, m, s1);
    _mm256_maskstore_pd(u2 + k, m, s2);
  }
}

// r(k) for four consecutive k: the exact scalar association
//   (((c0*uc + c1*t1) + c2*t2) + c3*t3)
// with t1 = (u1[k] + uc[k-1]) + uc[k+1], etc.
__attribute__((target("avx2"))) inline __m256d combine_block(
    const __m256d c0, const __m256d c1, const __m256d c2, const __m256d c3,
    const __m256d uck, const __m256d ucm, const __m256d ucp,
    const __m256d u1k, const __m256d u1m, const __m256d u1p,
    const __m256d u2k, const __m256d u2m, const __m256d u2p) {
  const __m256d t1 = _mm256_add_pd(_mm256_add_pd(u1k, ucm), ucp);
  const __m256d t2 = _mm256_add_pd(_mm256_add_pd(u2k, u1m), u1p);
  const __m256d t3 = _mm256_add_pd(u2m, u2p);
  return _mm256_add_pd(
      _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(c0, uck),
                                  _mm256_mul_pd(c1, t1)),
                    _mm256_mul_pd(c2, t2)),
      _mm256_mul_pd(c3, t3));
}

__attribute__((target("avx2"))) void combine_row_avx2(
    const double* c, const double* uc, const double* u1, const double* u2,
    double* out, extent_t lo, extent_t hi, bool accumulate) {
  const __m256d c0 = _mm256_set1_pd(c[0]);
  const __m256d c1 = _mm256_set1_pd(c[1]);
  const __m256d c2 = _mm256_set1_pd(c[2]);
  const __m256d c3 = _mm256_set1_pd(c[3]);
  extent_t k = lo;
  // 2x unrolled main loop: two independent 4-wide blocks per iteration give
  // the out-of-order core parallel add chains to overlap.  Per-element
  // arithmetic is untouched, so results stay bit-identical to the rolled
  // loop (and to scalar).
  for (; k + 8 <= hi; k += 8) {
    const __m256d ra = combine_block(
        c0, c1, c2, c3, _mm256_loadu_pd(uc + k), _mm256_loadu_pd(uc + k - 1),
        _mm256_loadu_pd(uc + k + 1), _mm256_loadu_pd(u1 + k),
        _mm256_loadu_pd(u1 + k - 1), _mm256_loadu_pd(u1 + k + 1),
        _mm256_loadu_pd(u2 + k), _mm256_loadu_pd(u2 + k - 1),
        _mm256_loadu_pd(u2 + k + 1));
    const __m256d rb = combine_block(
        c0, c1, c2, c3, _mm256_loadu_pd(uc + k + 4),
        _mm256_loadu_pd(uc + k + 3), _mm256_loadu_pd(uc + k + 5),
        _mm256_loadu_pd(u1 + k + 4), _mm256_loadu_pd(u1 + k + 3),
        _mm256_loadu_pd(u1 + k + 5), _mm256_loadu_pd(u2 + k + 4),
        _mm256_loadu_pd(u2 + k + 3), _mm256_loadu_pd(u2 + k + 5));
    if (accumulate) {
      _mm256_storeu_pd(out + k, _mm256_add_pd(_mm256_loadu_pd(out + k), ra));
      _mm256_storeu_pd(out + k + 4,
                       _mm256_add_pd(_mm256_loadu_pd(out + k + 4), rb));
    } else {
      _mm256_storeu_pd(out + k, ra);
      _mm256_storeu_pd(out + k + 4, rb);
    }
  }
  for (; k + 4 <= hi; k += 4) {
    const __m256d r = combine_block(
        c0, c1, c2, c3, _mm256_loadu_pd(uc + k), _mm256_loadu_pd(uc + k - 1),
        _mm256_loadu_pd(uc + k + 1), _mm256_loadu_pd(u1 + k),
        _mm256_loadu_pd(u1 + k - 1), _mm256_loadu_pd(u1 + k + 1),
        _mm256_loadu_pd(u2 + k), _mm256_loadu_pd(u2 + k - 1),
        _mm256_loadu_pd(u2 + k + 1));
    if (accumulate) {
      _mm256_storeu_pd(out + k, _mm256_add_pd(_mm256_loadu_pd(out + k), r));
    } else {
      _mm256_storeu_pd(out + k, r);
    }
  }
  if (k < hi) {
    const __m256i m = tail_mask(hi - k);
    const __m256d r = combine_block(
        c0, c1, c2, c3, _mm256_maskload_pd(uc + k, m),
        _mm256_maskload_pd(uc + k - 1, m), _mm256_maskload_pd(uc + k + 1, m),
        _mm256_maskload_pd(u1 + k, m), _mm256_maskload_pd(u1 + k - 1, m),
        _mm256_maskload_pd(u1 + k + 1, m), _mm256_maskload_pd(u2 + k, m),
        _mm256_maskload_pd(u2 + k - 1, m), _mm256_maskload_pd(u2 + k + 1, m));
    if (accumulate) {
      _mm256_maskstore_pd(
          out + k, m, _mm256_add_pd(_mm256_maskload_pd(out + k, m), r));
    } else {
      _mm256_maskstore_pd(out + k, m, r);
    }
  }
}

__attribute__((target("avx2"))) void ewise_into_row_avx2(const double* a,
                                                         double* out,
                                                         extent_t lo,
                                                         extent_t hi,
                                                         int op) {
  extent_t k = lo;
  for (; k + 4 <= hi; k += 4) {
    const __m256d av = _mm256_loadu_pd(a + k);
    const __m256d ov = _mm256_loadu_pd(out + k);
    const __m256d r = op == 0   ? _mm256_add_pd(av, ov)
                      : op == 1 ? _mm256_sub_pd(av, ov)
                                : _mm256_mul_pd(av, ov);
    _mm256_storeu_pd(out + k, r);
  }
  if (k < hi) {
    const __m256i m = tail_mask(hi - k);
    const __m256d av = _mm256_maskload_pd(a + k, m);
    const __m256d ov = _mm256_maskload_pd(out + k, m);
    const __m256d r = op == 0   ? _mm256_add_pd(av, ov)
                      : op == 1 ? _mm256_sub_pd(av, ov)
                                : _mm256_mul_pd(av, ov);
    _mm256_maskstore_pd(out + k, m, r);
  }
}

// Fixed horizontal combine shared by both folds: lane order l0..l3.
__attribute__((target("avx2"))) inline void extract_lanes(const __m256d v,
                                                          double* l) {
  const __m128d lo2 = _mm256_castpd256_pd128(v);
  const __m128d hi2 = _mm256_extractf128_pd(v, 1);
  l[0] = _mm_cvtsd_f64(lo2);
  l[1] = _mm_cvtsd_f64(_mm_unpackhi_pd(lo2, lo2));
  l[2] = _mm_cvtsd_f64(hi2);
  l[3] = _mm_cvtsd_f64(_mm_unpackhi_pd(hi2, hi2));
}

__attribute__((target("avx2"))) double sum_sq_row_avx2(double acc,
                                                       const double* p,
                                                       extent_t lo,
                                                       extent_t hi) {
  __m256d accv = _mm256_setzero_pd();
  extent_t k = lo;
  for (; k + 4 <= hi; k += 4) {
    const __m256d x = _mm256_loadu_pd(p + k);
    accv = _mm256_add_pd(accv, _mm256_mul_pd(x, x));
  }
  if (k < hi) {
    // Masked lanes load 0.0, square to 0.0 and add the neutral element —
    // the same dead-lane contribution the portable engine makes.
    const __m256d x = _mm256_maskload_pd(p + k, tail_mask(hi - k));
    accv = _mm256_add_pd(accv, _mm256_mul_pd(x, x));
  }
  double l[4];
  extract_lanes(accv, l);
  return acc + (((l[0] + l[1]) + l[2]) + l[3]);
}

__attribute__((target("avx2"))) double max_abs_row_avx2(double acc,
                                                        const double* p,
                                                        extent_t lo,
                                                        extent_t hi) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256d accv = _mm256_setzero_pd();
  extent_t k = lo;
  for (; k + 4 <= hi; k += 4) {
    accv = _mm256_max_pd(accv,
                         _mm256_andnot_pd(sign, _mm256_loadu_pd(p + k)));
  }
  if (k < hi) {
    const __m256d x = _mm256_maskload_pd(p + k, tail_mask(hi - k));
    accv = _mm256_max_pd(accv, _mm256_andnot_pd(sign, x));
  }
  double l[4];
  extract_lanes(accv, l);
  double r = acc;
  r = r > l[0] ? r : l[0];
  r = r > l[1] ? r : l[1];
  r = r > l[2] ? r : l[2];
  r = r > l[3] ? r : l[3];
  return r;
}

#endif  // SACPP_HAVE_AVX2_TARGET

#ifdef SACPP_HAVE_AVX512_TARGET

// -- AVX-512 kernels ---------------------------------------------------------
//
// 8-wide versions of the element-parallel primitives only.  Folds are NOT
// widened: the backend contract fixes the 4-lane fold structure, so the
// AVX-512 engine routes sum_sq/max_abs through the portable code.

#define SACPP_AVX512_TARGET \
  __attribute__((target("avx512f,avx512dq,avx512vl")))

// Mask with the low `r` lanes live (r in [1, 7]).
SACPP_AVX512_TARGET inline __mmask8 tail_mask8(extent_t r) {
  return static_cast<__mmask8>((1u << r) - 1u);
}

SACPP_AVX512_TARGET void fill_row_avx512(double* out, extent_t lo,
                                         extent_t hi, double v) {
  const __m512d vv = _mm512_set1_pd(v);
  extent_t k = lo;
  for (; k + 8 <= hi; k += 8) _mm512_storeu_pd(out + k, vv);
  if (k < hi) _mm512_mask_storeu_pd(out + k, tail_mask8(hi - k), vv);
}

SACPP_AVX512_TARGET void plane_sums_avx512(
    const double* im, const double* ip, const double* jm, const double* jp,
    const double* imm, const double* imp, const double* ipm,
    const double* ipp, double* u1, double* u2, extent_t n) {
  extent_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512d s1 = _mm512_add_pd(
        _mm512_add_pd(_mm512_add_pd(_mm512_loadu_pd(im + k),
                                    _mm512_loadu_pd(ip + k)),
                      _mm512_loadu_pd(jm + k)),
        _mm512_loadu_pd(jp + k));
    const __m512d s2 = _mm512_add_pd(
        _mm512_add_pd(_mm512_add_pd(_mm512_loadu_pd(imm + k),
                                    _mm512_loadu_pd(imp + k)),
                      _mm512_loadu_pd(ipm + k)),
        _mm512_loadu_pd(ipp + k));
    _mm512_storeu_pd(u1 + k, s1);
    _mm512_storeu_pd(u2 + k, s2);
  }
  if (k < n) {
    const __mmask8 m = tail_mask8(n - k);
    const __m512d s1 = _mm512_add_pd(
        _mm512_add_pd(_mm512_add_pd(_mm512_maskz_loadu_pd(m, im + k),
                                    _mm512_maskz_loadu_pd(m, ip + k)),
                      _mm512_maskz_loadu_pd(m, jm + k)),
        _mm512_maskz_loadu_pd(m, jp + k));
    const __m512d s2 = _mm512_add_pd(
        _mm512_add_pd(_mm512_add_pd(_mm512_maskz_loadu_pd(m, imm + k),
                                    _mm512_maskz_loadu_pd(m, imp + k)),
                      _mm512_maskz_loadu_pd(m, ipm + k)),
        _mm512_maskz_loadu_pd(m, ipp + k));
    _mm512_mask_storeu_pd(u1 + k, m, s1);
    _mm512_mask_storeu_pd(u2 + k, m, s2);
  }
}

// Same per-element association as combine_block, eight lanes at a time.
SACPP_AVX512_TARGET inline __m512d combine_block_avx512(
    const __m512d c0, const __m512d c1, const __m512d c2, const __m512d c3,
    const __m512d uck, const __m512d ucm, const __m512d ucp,
    const __m512d u1k, const __m512d u1m, const __m512d u1p,
    const __m512d u2k, const __m512d u2m, const __m512d u2p) {
  const __m512d t1 = _mm512_add_pd(_mm512_add_pd(u1k, ucm), ucp);
  const __m512d t2 = _mm512_add_pd(_mm512_add_pd(u2k, u1m), u1p);
  const __m512d t3 = _mm512_add_pd(u2m, u2p);
  return _mm512_add_pd(
      _mm512_add_pd(_mm512_add_pd(_mm512_mul_pd(c0, uck),
                                  _mm512_mul_pd(c1, t1)),
                    _mm512_mul_pd(c2, t2)),
      _mm512_mul_pd(c3, t3));
}

SACPP_AVX512_TARGET void combine_row_avx512(
    const double* c, const double* uc, const double* u1, const double* u2,
    double* out, extent_t lo, extent_t hi, bool accumulate) {
  const __m512d c0 = _mm512_set1_pd(c[0]);
  const __m512d c1 = _mm512_set1_pd(c[1]);
  const __m512d c2 = _mm512_set1_pd(c[2]);
  const __m512d c3 = _mm512_set1_pd(c[3]);
  extent_t k = lo;
  for (; k + 8 <= hi; k += 8) {
    const __m512d r = combine_block_avx512(
        c0, c1, c2, c3, _mm512_loadu_pd(uc + k), _mm512_loadu_pd(uc + k - 1),
        _mm512_loadu_pd(uc + k + 1), _mm512_loadu_pd(u1 + k),
        _mm512_loadu_pd(u1 + k - 1), _mm512_loadu_pd(u1 + k + 1),
        _mm512_loadu_pd(u2 + k), _mm512_loadu_pd(u2 + k - 1),
        _mm512_loadu_pd(u2 + k + 1));
    if (accumulate) {
      _mm512_storeu_pd(out + k, _mm512_add_pd(_mm512_loadu_pd(out + k), r));
    } else {
      _mm512_storeu_pd(out + k, r);
    }
  }
  if (k < hi) {
    const __mmask8 m = tail_mask8(hi - k);
    const __m512d r = combine_block_avx512(
        c0, c1, c2, c3, _mm512_maskz_loadu_pd(m, uc + k),
        _mm512_maskz_loadu_pd(m, uc + k - 1),
        _mm512_maskz_loadu_pd(m, uc + k + 1),
        _mm512_maskz_loadu_pd(m, u1 + k),
        _mm512_maskz_loadu_pd(m, u1 + k - 1),
        _mm512_maskz_loadu_pd(m, u1 + k + 1),
        _mm512_maskz_loadu_pd(m, u2 + k),
        _mm512_maskz_loadu_pd(m, u2 + k - 1),
        _mm512_maskz_loadu_pd(m, u2 + k + 1));
    if (accumulate) {
      _mm512_mask_storeu_pd(
          out + k, m,
          _mm512_add_pd(_mm512_maskz_loadu_pd(m, out + k), r));
    } else {
      _mm512_mask_storeu_pd(out + k, m, r);
    }
  }
}

SACPP_AVX512_TARGET void ewise_into_row_avx512(const double* a, double* out,
                                               extent_t lo, extent_t hi,
                                               int op) {
  extent_t k = lo;
  for (; k + 8 <= hi; k += 8) {
    const __m512d av = _mm512_loadu_pd(a + k);
    const __m512d ov = _mm512_loadu_pd(out + k);
    const __m512d r = op == 0   ? _mm512_add_pd(av, ov)
                      : op == 1 ? _mm512_sub_pd(av, ov)
                                : _mm512_mul_pd(av, ov);
    _mm512_storeu_pd(out + k, r);
  }
  if (k < hi) {
    const __mmask8 m = tail_mask8(hi - k);
    const __m512d av = _mm512_maskz_loadu_pd(m, a + k);
    const __m512d ov = _mm512_maskz_loadu_pd(m, out + k);
    const __m512d r = op == 0   ? _mm512_add_pd(av, ov)
                      : op == 1 ? _mm512_sub_pd(av, ov)
                                : _mm512_mul_pd(av, ov);
    _mm512_mask_storeu_pd(out + k, m, r);
  }
}

#undef SACPP_AVX512_TARGET

#endif  // SACPP_HAVE_AVX512_TARGET

// -- engines -----------------------------------------------------------------

class PortableSimdBackend final : public Backend {
 public:
  const char* name() const noexcept override { return "portable"; }
  unsigned lanes() const noexcept override { return 4; }
  bool vectorized() const noexcept override { return true; }

  void fill_row(double* out, extent_t lo, extent_t hi,
                double v) const override {
    fill_row_generic(out, lo, hi, v);
  }
  void copy_row(double* out, const double* src, extent_t lo,
                extent_t hi) const override {
    copy_row_generic(out, src, lo, hi);
  }
  void plane_sums(const double* im, const double* ip, const double* jm,
                  const double* jp, const double* imm, const double* imp,
                  const double* ipm, const double* ipp, double* u1,
                  double* u2, extent_t n) const override {
    plane_sums_generic(im, ip, jm, jp, imm, imp, ipm, ipp, u1, u2, n);
  }
  void combine_row(const double* c, const double* uc, const double* u1,
                   const double* u2, double* out, extent_t lo,
                   extent_t hi) const override {
    combine_row_generic(c, uc, u1, u2, out, lo, hi);
  }
  void accumulate_row(const double* c, const double* uc, const double* u1,
                      const double* u2, double* out, extent_t lo,
                      extent_t hi) const override {
    accumulate_row_generic(c, uc, u1, u2, out, lo, hi);
  }
  void add_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    for (extent_t k = lo; k < hi; ++k) out[k] = a[k] + out[k];
  }
  void sub_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    for (extent_t k = lo; k < hi; ++k) out[k] = a[k] - out[k];
  }
  void mul_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    for (extent_t k = lo; k < hi; ++k) out[k] = a[k] * out[k];
  }
  void gather_row(double* out, const double* src, extent_t stride,
                  extent_t n) const override {
    gather_row_generic(out, src, stride, n);
  }
  void scatter_row(double* out, extent_t stride, const double* src,
                   extent_t n) const override {
    scatter_row_generic(out, stride, src, n);
  }
  double sum_sq_row(double acc, const double* p, extent_t lo,
                    extent_t hi) const override {
    return sum_sq_row_portable(acc, p, lo, hi);
  }
  double max_abs_row(double acc, const double* p, extent_t lo,
                     extent_t hi) const override {
    return max_abs_row_portable(acc, p, lo, hi);
  }
};

#ifdef SACPP_HAVE_AVX2_TARGET

class Avx2Backend final : public Backend {
 public:
  const char* name() const noexcept override { return "avx2"; }
  unsigned lanes() const noexcept override { return 4; }
  bool vectorized() const noexcept override { return true; }

  void fill_row(double* out, extent_t lo, extent_t hi,
                double v) const override {
    fill_row_avx2(out, lo, hi, v);
  }
  void copy_row(double* out, const double* src, extent_t lo,
                extent_t hi) const override {
    copy_row_generic(out, src, lo, hi);
  }
  void plane_sums(const double* im, const double* ip, const double* jm,
                  const double* jp, const double* imm, const double* imp,
                  const double* ipm, const double* ipp, double* u1,
                  double* u2, extent_t n) const override {
    plane_sums_avx2(im, ip, jm, jp, imm, imp, ipm, ipp, u1, u2, n);
  }
  void combine_row(const double* c, const double* uc, const double* u1,
                   const double* u2, double* out, extent_t lo,
                   extent_t hi) const override {
    combine_row_avx2(c, uc, u1, u2, out, lo, hi, /*accumulate=*/false);
  }
  void accumulate_row(const double* c, const double* uc, const double* u1,
                      const double* u2, double* out, extent_t lo,
                      extent_t hi) const override {
    combine_row_avx2(c, uc, u1, u2, out, lo, hi, /*accumulate=*/true);
  }
  void add_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    ewise_into_row_avx2(a, out, lo, hi, 0);
  }
  void sub_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    ewise_into_row_avx2(a, out, lo, hi, 1);
  }
  void mul_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    ewise_into_row_avx2(a, out, lo, hi, 2);
  }
  void gather_row(double* out, const double* src, extent_t stride,
                  extent_t n) const override {
    gather_row_generic(out, src, stride, n);
  }
  void scatter_row(double* out, extent_t stride, const double* src,
                   extent_t n) const override {
    scatter_row_generic(out, stride, src, n);
  }
  double sum_sq_row(double acc, const double* p, extent_t lo,
                    extent_t hi) const override {
    return sum_sq_row_avx2(acc, p, lo, hi);
  }
  double max_abs_row(double acc, const double* p, extent_t lo,
                     extent_t hi) const override {
    return max_abs_row_avx2(acc, p, lo, hi);
  }
};

#endif  // SACPP_HAVE_AVX2_TARGET

#ifdef SACPP_HAVE_AVX512_TARGET

class Avx512Backend final : public Backend {
 public:
  const char* name() const noexcept override { return "avx512"; }
  unsigned lanes() const noexcept override { return 8; }
  bool vectorized() const noexcept override { return true; }

  void fill_row(double* out, extent_t lo, extent_t hi,
                double v) const override {
    fill_row_avx512(out, lo, hi, v);
  }
  void copy_row(double* out, const double* src, extent_t lo,
                extent_t hi) const override {
    copy_row_generic(out, src, lo, hi);
  }
  void plane_sums(const double* im, const double* ip, const double* jm,
                  const double* jp, const double* imm, const double* imp,
                  const double* ipm, const double* ipp, double* u1,
                  double* u2, extent_t n) const override {
    plane_sums_avx512(im, ip, jm, jp, imm, imp, ipm, ipp, u1, u2, n);
  }
  void combine_row(const double* c, const double* uc, const double* u1,
                   const double* u2, double* out, extent_t lo,
                   extent_t hi) const override {
    combine_row_avx512(c, uc, u1, u2, out, lo, hi, /*accumulate=*/false);
  }
  void accumulate_row(const double* c, const double* uc, const double* u1,
                      const double* u2, double* out, extent_t lo,
                      extent_t hi) const override {
    combine_row_avx512(c, uc, u1, u2, out, lo, hi, /*accumulate=*/true);
  }
  void add_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    ewise_into_row_avx512(a, out, lo, hi, 0);
  }
  void sub_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    ewise_into_row_avx512(a, out, lo, hi, 1);
  }
  void mul_into_row(const double* a, double* out, extent_t lo,
                    extent_t hi) const override {
    ewise_into_row_avx512(a, out, lo, hi, 2);
  }
  void gather_row(double* out, const double* src, extent_t stride,
                  extent_t n) const override {
    gather_row_generic(out, src, stride, n);
  }
  void scatter_row(double* out, extent_t stride, const double* src,
                   extent_t n) const override {
    scatter_row_generic(out, stride, src, n);
  }
  // Folds stay 4-lane (header contract): delegate to the portable shape so
  // norms do not change when dispatch picks this engine over avx2.
  double sum_sq_row(double acc, const double* p, extent_t lo,
                    extent_t hi) const override {
    return sum_sq_row_portable(acc, p, lo, hi);
  }
  double max_abs_row(double acc, const double* p, extent_t lo,
                     extent_t hi) const override {
    return max_abs_row_portable(acc, p, lo, hi);
  }
};

#endif  // SACPP_HAVE_AVX512_TARGET

}  // namespace

namespace detail {

const Backend& portable_backend() noexcept {
  static const PortableSimdBackend be;
  return be;
}

const Backend* avx2_backend() noexcept {
#ifdef SACPP_HAVE_AVX2_TARGET
  if (!cpu_has_avx2()) return nullptr;
  static const Avx2Backend be;
  return &be;
#else
  return nullptr;
#endif
}

const Backend* avx512_backend() noexcept {
#ifdef SACPP_HAVE_AVX512_TARGET
  if (!cpu_has_avx512()) return nullptr;
  static const Avx512Backend be;
  return &be;
#else
  return nullptr;
#endif
}

}  // namespace detail

}  // namespace sacpp::sac
