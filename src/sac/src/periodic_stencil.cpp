#include "sacpp/sac/periodic_stencil.hpp"

namespace sacpp::sac {

Array<double> relax_kernel_periodic(const Array<double>& a,
                                    const StencilCoeffs& coeffs) {
  const PeriodicStencilExpr st(a, coeffs);
  const Shape& shp = a.shape();
  if (shp.rank() == 3) {
    return with_genarray<double>(
        shp, gen_all(),
        rank3_body([&st](extent_t i, extent_t j, extent_t k) {
          return st(i, j, k);
        }));
  }
  return with_genarray<double>(shp,
                               [&st](const IndexVec& iv) { return st(iv); });
}

}  // namespace sacpp::sac
