#include "sacpp/sac/periodic_stencil.hpp"

namespace sacpp::sac {

Array<double> relax_kernel_periodic(const Array<double>& a,
                                    const StencilCoeffs& coeffs,
                                    StencilMode mode) {
  // As in relax_kernel, the expression is the body: the with-loop engine
  // picks row-fill (kPlanes), unpacked rank-3, or index-vector access.
  const PeriodicStencilExpr st(a, coeffs, mode);
  return with_genarray<double>(a.shape(), gen_all(), st, 0.0);
}

}  // namespace sacpp::sac
