// The JIT kernel cache: in-memory table, background compile thread, host
// toolchain invocation, dlopen, and the SACPP_JIT_CACHE_DIR disk cache
// (docs/jit.md).
//
// Hot path: lookup() is one FNV hash of the POD key plus a lock-free probe
// of an insert-only open-addressed table — ~15 ns, no allocation, no lock.
// Everything slow (IR construction, source lowering, the compiler fork,
// dlopen) happens once per kernel shape, off the calling thread unless
// SACPP_JIT_SYNC=1.
//
// Degradation: any failure — compiler missing (SACPP_JIT_CC=/nonexistent),
// unwritable workspace, dlopen rejection — prints one diagnostic, counts
// stats().jit_compile_fails and flips the engine into permanent fallback
// mode.  The JitBackend then routes every row to the SIMD engine, whose
// results are bit-identical (backend.hpp), so a host without a toolchain
// is slower, never wrong.

#include <dlfcn.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "sacpp/obs/obs.hpp"
#include "sacpp/sac/backend.hpp"
#include "sacpp/sac/jit.hpp"
#include "sacpp/sac/stats.hpp"

extern char** environ;

namespace sacpp::sac::jit {

namespace detail {
std::atomic<std::uint32_t> g_epoch{1};
}  // namespace detail

namespace {

constexpr std::size_t kSlots = 1024;  // power of two; insert-only

std::uint64_t hash_key(const KernelKey& k) noexcept {
  // Word-wise FNV-1a over the key fields (never struct padding), with a
  // murmur-style finisher for low-bit diffusion.  This sits on the per-row
  // dispatch path, so it is one multiply per field, not one per byte.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(k.prim) |
      (static_cast<std::uint64_t>(k.accumulate) << 8));
  mix(static_cast<std::uint64_t>(k.length));
  mix(static_cast<std::uint64_t>(k.lo));
  mix(static_cast<std::uint64_t>(k.hi));
  mix(static_cast<std::uint64_t>(k.stride));
  for (std::uint64_t c : k.c) mix(c);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

struct Entry {
  KernelKey key;
  std::atomic<KernelFn> fn{nullptr};
  std::atomic<bool> queued{false};
  RowProgram prog;        // built once, at request time
  std::uint64_t ir_hash;  // stable disk-cache identity
};

struct Cache {
  std::atomic<Entry*> slots[kSlots] = {};
  std::mutex mu;  // inserts, queue, worker lifecycle
  std::condition_variable cv;
  std::deque<Entry*> queue;
  bool worker_running = false;
  bool worker_busy = false;
  std::atomic<bool> disabled{false};
  std::atomic<bool> diag_printed{false};
};

// Leaked on purpose: compiled kernels and the worker may outlive static
// destruction; the global pointer keeps the block reachable for LSan.
Cache* cache() {
  static Cache* c = new Cache;
  return c;
}

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// mkdir -p for the cache dir: a missing directory should mean "first run",
// not a degraded engine.  Best-effort — EEXIST and races are fine, and a
// real permission problem still surfaces as the compile-workspace
// diagnostic, which carries more context than a failure here could.
void ensure_dir(const std::string& dir) {
  std::string path;
  for (std::size_t i = 0; i < dir.size(); ++i) {
    path += dir[i];
    if ((dir[i] == '/' && i > 0) || i + 1 == dir.size()) {
      ::mkdir(path.c_str(), 0755);
    }
  }
}

std::string workspace_dir() {
  const char* dir = std::getenv("SACPP_JIT_CACHE_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    ensure_dir(dir);
    return dir;
  }
  const char* tmp = std::getenv("TMPDIR");
  return tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp";
}

bool disk_cache_enabled() {
  const char* dir = std::getenv("SACPP_JIT_CACHE_DIR");
  return dir != nullptr && dir[0] != '\0';
}

std::string so_name(const Entry& e) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "sacpp_jit_v1_p%02u_%016llx.so", e.key.prim,
                static_cast<unsigned long long>(e.ir_hash));
  return buf;
}

void disable_with_diag(const char* what, const std::string& detail) {
  Cache* c = cache();
  stats().jit_compile_fails += 1;
  c->disabled.store(true, std::memory_order_release);
  detail::g_epoch.fetch_add(1, std::memory_order_release);  // drop stale memos
  if (!c->diag_printed.exchange(true)) {
    std::fprintf(stderr,
                 "sacpp jit: %s (%s); degrading to the simd engine for this "
                 "process — results are unchanged, only slower\n",
                 what, detail.c_str());
  }
}

// dlopen `path` and publish its kernel into `e`.  Returns false (without
// disabling) when the object is unusable, so callers can fall back to a
// fresh compile of a stale disk-cache file.
bool publish_from_so(Entry& e, const std::string& path) {
  void* handle = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) return false;
  void* sym = ::dlsym(handle, "sacpp_jit_kernel");
  if (sym == nullptr) {
    ::dlclose(handle);
    return false;
  }
  e.fn.store(reinterpret_cast<KernelFn>(sym), std::memory_order_release);
  return true;  // handle stays open for the process lifetime
}

// Run the host compiler on src -> so.  Returns false with `detail` filled
// on any failure.
bool run_compiler(const std::string& src, const std::string& so,
                  std::string* detail) {
  const char* cc = std::getenv("SACPP_JIT_CC");
  if (cc == nullptr || cc[0] == '\0') cc = "c++";
  // GCC tunes -march=native AVX-512 targets to 256-bit vectors by default;
  // the autovectorized kernels (plane sums, ewise, gather/scatter) want the
  // full width the hand-written simd engine already uses.  The flag is
  // x86-only, so it is gated on the same probe as the avx512 engine.
  const char* width =
      cpu_has_avx512() ? "-mprefer-vector-width=512" : "-ffp-contract=off";
  const char* argv[] = {cc,       "-O3",     "-march=native",
                        "-ffp-contract=off", width, "-shared", "-fPIC",
                        "-o",     so.c_str(), src.c_str(), nullptr};
  pid_t pid = -1;
  const int rc = ::posix_spawnp(&pid, cc, nullptr, nullptr,
                                const_cast<char**>(argv), environ);
  if (rc != 0) {
    *detail = std::string(cc) + ": " + std::strerror(rc);
    return false;
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    *detail = std::string(cc) + " exited with status " +
              std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    return false;
  }
  return true;
}

// Build (or load from disk) the kernel for `e`.  Any hard failure disables
// the engine.
void compile_entry(Entry& e) {
  Cache* c = cache();
  if (c->disabled.load(std::memory_order_acquire)) return;
  const auto t0 = std::chrono::steady_clock::now();
  const std::string dir = workspace_dir();
  const std::string name = so_name(e);
  const std::string final_so = dir + "/" + name;
  if (disk_cache_enabled()) {
    struct stat st;
    if (::stat(final_so.c_str(), &st) == 0 && publish_from_so(e, final_so)) {
      stats().jit_disk_hits += 1;
      return;
    }
  }
  const std::string tag = "." + std::to_string(static_cast<long>(::getpid()));
  const std::string src = final_so + tag + ".cpp";
  const std::string tmp_so = final_so + tag + ".tmp";
  const std::string code = generate_source(e.prog);
  std::FILE* f = std::fopen(src.c_str(), "w");
  if (f == nullptr ||
      std::fwrite(code.data(), 1, code.size(), f) != code.size() ||
      std::fclose(f) != 0) {
    if (f != nullptr) std::fclose(f);
    disable_with_diag("cannot write kernel source", src);
    return;
  }
  std::string detail;
  if (!run_compiler(src, tmp_so, &detail)) {
    ::unlink(src.c_str());
    ::unlink(tmp_so.c_str());
    disable_with_diag("host compiler unavailable or failed", detail);
    return;
  }
  ::unlink(src.c_str());
  if (::rename(tmp_so.c_str(), final_so.c_str()) != 0) {
    ::unlink(tmp_so.c_str());
    disable_with_diag("cannot move compiled kernel into place", final_so);
    return;
  }
  if (!publish_from_so(e, final_so)) {
    disable_with_diag("dlopen rejected compiled kernel",
                      dlerror() != nullptr ? dlerror() : final_so);
    return;
  }
  if (!disk_cache_enabled()) ::unlink(final_so.c_str());  // mapping persists
  stats().jit_compiles += 1;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  obs::observe(obs::Hist::kJitCompileNs, static_cast<std::uint64_t>(ns));
}

void worker_loop() {
  Cache* c = cache();
  std::unique_lock<std::mutex> lock(c->mu);
  for (;;) {
    c->cv.wait(lock, [c] { return !c->queue.empty(); });
    Entry* e = c->queue.front();
    c->queue.pop_front();
    c->worker_busy = true;
    lock.unlock();
    compile_entry(*e);
    lock.lock();
    c->worker_busy = false;
    c->cv.notify_all();  // wake drain()
  }
}

// Find the slot for `key`, or the first empty slot of its probe chain.
// Returns nullptr on a full table (kernel set outgrew kSlots — fall back).
std::atomic<Entry*>* probe(const KernelKey& key, Entry** found) {
  Cache* c = cache();
  std::size_t i = hash_key(key) & (kSlots - 1);
  for (std::size_t n = 0; n < kSlots; ++n, i = (i + 1) & (kSlots - 1)) {
    Entry* e = c->slots[i].load(std::memory_order_acquire);
    if (e == nullptr) {
      *found = nullptr;
      return &c->slots[i];
    }
    if (e->key == key) {
      *found = e;
      return &c->slots[i];
    }
  }
  *found = nullptr;
  return nullptr;
}

}  // namespace

KernelFn lookup(const KernelKey& key) noexcept {
  Entry* e = nullptr;
  probe(key, &e);
  return e != nullptr ? e->fn.load(std::memory_order_acquire) : nullptr;
}

KernelFn request(const KernelKey& key, RowProgram (*make)(const KernelKey&)) {
  Cache* c = cache();
  if (c->disabled.load(std::memory_order_acquire)) return nullptr;
  Entry* e = nullptr;
  probe(key, &e);
  if (e == nullptr) {
    std::lock_guard<std::mutex> lock(c->mu);
    std::atomic<Entry*>* slot = probe(key, &e);
    if (slot == nullptr) return nullptr;  // table full: permanent fallback
    if (e == nullptr) {
      Entry* fresh = new Entry;  // leaked with the cache, by design
      fresh->key = key;
      fresh->prog = make(key);
      fresh->ir_hash = fresh->prog.hash();
      slot->store(fresh, std::memory_order_release);
      e = fresh;
    }
  }
  KernelFn fn = e->fn.load(std::memory_order_acquire);
  if (fn != nullptr) return fn;
  if (env_truthy("SACPP_JIT_SYNC")) {
    // One thread compiles; others keep falling back until it lands.
    if (!e->queued.exchange(true)) compile_entry(*e);
    return e->fn.load(std::memory_order_acquire);
  }
  if (!e->queued.exchange(true)) {
    std::lock_guard<std::mutex> lock(c->mu);
    c->queue.push_back(e);
    if (!c->worker_running) {
      c->worker_running = true;
      std::thread(worker_loop).detach();
    }
    c->cv.notify_all();
  }
  return nullptr;
}

void drain() {
  Cache* c = cache();
  std::unique_lock<std::mutex> lock(c->mu);
  c->cv.wait(lock, [c] { return c->queue.empty() && !c->worker_busy; });
}

bool available() noexcept {
  return !cache()->disabled.load(std::memory_order_acquire);
}

namespace testing {
void reset() {
  drain();
  Cache* c = cache();
  std::lock_guard<std::mutex> lock(c->mu);
  for (std::size_t i = 0; i < kSlots; ++i) {
    c->slots[i].store(nullptr, std::memory_order_release);
  }
  c->disabled.store(false, std::memory_order_release);
  c->diag_printed.store(false, std::memory_order_release);
  detail::g_epoch.fetch_add(1, std::memory_order_release);
}
}  // namespace testing

}  // namespace sacpp::sac::jit
