#include "sacpp/sac/wlgraph.hpp"

#include <functional>
#include <set>
#include <sstream>
#include <unordered_map>

#include "sacpp/common/error.hpp"
#include "sacpp/sac/array_lib.hpp"
#include "sacpp/sac/expr.hpp"

namespace sacpp::sac::wl {

// ---------------------------------------------------------------------------
// AffineMap
// ---------------------------------------------------------------------------

bool AffineMap::is_identity(std::size_t rank) const {
  if (num != 1 || den != 1 || pre != 0) return false;
  if (offset.size() != rank) return false;
  for (extent_t o : offset) {
    if (o != 0) return false;
  }
  return true;
}

namespace {

bool uniform_offset(const AffineMap& m, extent_t* value) {
  if (m.offset.empty()) {
    *value = 0;
    return true;
  }
  const extent_t v = m.offset[0];
  for (extent_t o : m.offset) {
    if (o != v) return false;
  }
  *value = v;
  return true;
}

// Can outer∘inner collapse into one exact map?  Only an exact affine outer
// (no division, uniform offset) composes without losing the inner gap
// condition.
bool composable(const AffineMap& outer, const AffineMap& /*inner*/) {
  extent_t uo = 0;
  return outer.den == 1 && uniform_offset(outer, &uo);
}

// One axis of the evaluator's gather semantics: false means "default value"
// (non-divisible or negative pre-division), true yields the source index,
// which may still be out of bounds.
bool map_src(const AffineMap& m, extent_t iv, std::size_t d, extent_t* src) {
  const extent_t scaled = iv * m.num + m.pre;
  if (m.den != 1 && (scaled % m.den != 0 || scaled < 0)) return false;
  *src = scaled / m.den + m.offset[d];
  return true;
}

// Collapsing outer∘inner replaces the two-step evaluation (outer index ->
// inner bounds check -> inner map -> source bounds check) with one composed
// map that only bounds-checks the source.  That is exact only if the
// composed map reads the source for exactly the result indices the two-step
// evaluation does: an outer index that leaves the *inner* shape while the
// composed index still lands inside the source (take∘shift chains), or a
// negative scaled value whose sign check the den-cancelling normalisation
// removed, would silently turn a default value into a source read.  The
// maps are monotone per axis, so a direct scan of the result extents
// settles it exactly; oversized extents refuse rather than guess.
constexpr extent_t kCollapseScanCap = extent_t{1} << 16;

bool collapse_exact(const Node& outer, const Node& inner,
                    const AffineMap& composed) {
  const Shape& so = outer.shape;
  const Shape& si = inner.shape;
  const Shape& sx = inner.args[0]->shape;
  extent_t uo = 0;
  if (!uniform_offset(outer.map, &uo)) return false;
  for (std::size_t d = 0; d < so.rank(); ++d) {
    if (so.extent(d) > kCollapseScanCap) return false;
    for (extent_t iv = 0; iv < so.extent(d); ++iv) {
      extent_t csrc = 0;
      const bool composed_reads =
          map_src(composed, iv, d, &csrc) && csrc >= 0 && csrc < sx.extent(d);
      const extent_t j = iv * outer.map.num + outer.map.pre + uo;
      extent_t nsrc = 0;
      const bool naive_reads = j >= 0 && j < si.extent(d) &&
                               map_src(inner.map, j, d, &nsrc) && nsrc >= 0 &&
                               nsrc < sx.extent(d);
      if (composed_reads != naive_reads) return false;
      if (composed_reads && csrc != nsrc) return false;
    }
  }
  return true;
}

AffineMap compose_checked(const AffineMap& outer, const AffineMap& inner) {
  extent_t uo = 0;
  SACPP_REQUIRE(uniform_offset(outer, &uo) && outer.den == 1,
                "maps not composable");
  AffineMap m;
  m.num = outer.num * inner.num;
  m.den = inner.den;
  m.pre = (outer.pre + uo) * inner.num + inner.pre;
  m.offset = inner.offset;
  // Normalise: when the divisor divides both scale and phase the division
  // is exact everywhere (no gaps) and cancels — this is how
  // condense∘scatter chains become the identity.
  if (m.den > 1 && m.num % m.den == 0 && m.pre % m.den == 0) {
    m.num /= m.den;
    m.pre /= m.den;
    m.den = 1;
  }
  return m;
}

NodeRef make(Node n) { return std::make_shared<const Node>(std::move(n)); }

void check_same_shape(const NodeRef& a, const NodeRef& b) {
  SACPP_REQUIRE(a->shape == b->shape,
                "element-wise graph nodes need equal shapes");
}

}  // namespace

// ---------------------------------------------------------------------------
// Node queries
// ---------------------------------------------------------------------------

namespace {

void collect(const Node* n, std::set<const Node*>& seen) {
  if (!seen.insert(n).second) return;
  for (const auto& a : n->args) collect(a.get(), seen);
}

}  // namespace

std::size_t Node::node_count() const {
  std::set<const Node*> seen;
  collect(this, seen);
  return seen.size();
}

std::size_t Node::materialisation_count() const {
  std::set<const Node*> seen;
  collect(this, seen);
  std::size_t count = 0;
  for (const Node* n : seen) {
    if (n->kind != OpKind::kInput && n->kind != OpKind::kConst) ++count;
  }
  return count;
}

std::string Node::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case OpKind::kInput:
      os << name;
      break;
    case OpKind::kConst:
      os << value;
      break;
    case OpKind::kEwise: {
      const char* names[] = {"add", "sub", "mul", "neg", "abs", "scale"};
      os << names[static_cast<int>(fn)] << '(';
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) os << ", ";
        os << args[i]->to_string();
      }
      if (fn == EwiseFn::kScale) os << ", " << value;
      os << ')';
      break;
    }
    case OpKind::kStencil:
      os << "stencil(" << args[0]->to_string() << ')';
      break;
    case OpKind::kGather:
      os << "gather[*" << map.num << '+' << map.pre << '/' << map.den
         << "](" << args[0]->to_string() << ')';
      break;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

NodeRef input(std::string name, const Shape& shape) {
  Node n;
  n.kind = OpKind::kInput;
  n.name = std::move(name);
  n.shape = shape;
  return make(std::move(n));
}

NodeRef constant(const Shape& shape, double value) {
  Node n;
  n.kind = OpKind::kConst;
  n.value = value;
  n.shape = shape;
  return make(std::move(n));
}

namespace {

NodeRef ewise2(EwiseFn fn, NodeRef a, NodeRef b) {
  check_same_shape(a, b);
  Node n;
  n.kind = OpKind::kEwise;
  n.fn = fn;
  n.shape = a->shape;
  n.args = {std::move(a), std::move(b)};
  return make(std::move(n));
}

NodeRef ewise1(EwiseFn fn, NodeRef a, double value = 0.0) {
  Node n;
  n.kind = OpKind::kEwise;
  n.fn = fn;
  n.value = value;
  n.shape = a->shape;
  n.args = {std::move(a)};
  return make(std::move(n));
}

NodeRef gather(NodeRef a, const Shape& out_shape, AffineMap map,
               double dflt = 0.0) {
  Node n;
  n.kind = OpKind::kGather;
  n.shape = out_shape;
  n.map = std::move(map);
  n.dflt = dflt;
  n.args = {std::move(a)};
  return make(std::move(n));
}

}  // namespace

NodeRef add(NodeRef a, NodeRef b) { return ewise2(EwiseFn::kAdd, a, b); }
NodeRef sub(NodeRef a, NodeRef b) { return ewise2(EwiseFn::kSub, a, b); }
NodeRef mul(NodeRef a, NodeRef b) { return ewise2(EwiseFn::kMul, a, b); }
NodeRef neg(NodeRef a) { return ewise1(EwiseFn::kNeg, std::move(a)); }
NodeRef abs(NodeRef a) { return ewise1(EwiseFn::kAbs, std::move(a)); }
NodeRef scale(NodeRef a, double s) {
  return ewise1(EwiseFn::kScale, std::move(a), s);
}

NodeRef stencil(NodeRef a, const StencilCoeffs& coeffs) {
  Node n;
  n.kind = OpKind::kStencil;
  n.coeffs = coeffs;
  n.shape = a->shape;
  n.args = {std::move(a)};
  return make(std::move(n));
}

NodeRef condense(extent_t stride, NodeRef a, extent_t phase) {
  SACPP_REQUIRE(stride >= 1 && phase >= 0 && phase < stride,
                "condense stride/phase invalid");
  const std::size_t rank = a->shape.rank();
  AffineMap m;
  m.num = stride;
  m.pre = phase;
  m.offset = uniform_vec(rank, 0);
  return gather(a, Shape(a->shape.extents() / stride), std::move(m));
}

NodeRef scatter(extent_t stride, NodeRef a, extent_t phase) {
  SACPP_REQUIRE(stride >= 1 && phase >= 0 && phase < stride,
                "scatter stride/phase invalid");
  const std::size_t rank = a->shape.rank();
  AffineMap m;
  m.den = stride;
  m.pre = -phase;
  m.offset = uniform_vec(rank, 0);
  return gather(a, Shape(stride * a->shape.extents()), std::move(m));
}

NodeRef take(const IndexVec& shp, NodeRef a) {
  SACPP_REQUIRE(shp.size() == a->shape.rank(), "take rank mismatch");
  AffineMap m;
  m.offset = uniform_vec(shp.size(), 0);
  return gather(a, Shape(shp), std::move(m));
}

NodeRef embed(const IndexVec& shp, const IndexVec& pos, NodeRef a) {
  SACPP_REQUIRE(shp.size() == a->shape.rank() && pos.size() == shp.size(),
                "embed rank mismatch");
  AffineMap m;
  m.offset = IndexVec(pos.size());
  for (std::size_t d = 0; d < pos.size(); ++d) m.offset[d] = -pos[d];
  return gather(a, Shape(shp), std::move(m));
}

NodeRef shift(const IndexVec& offset, NodeRef a) {
  SACPP_REQUIRE(offset.size() == a->shape.rank(), "shift rank mismatch");
  AffineMap m;
  m.offset = IndexVec(offset.size());
  for (std::size_t d = 0; d < offset.size(); ++d) m.offset[d] = -offset[d];
  return gather(a, a->shape, std::move(m));
}

// ---------------------------------------------------------------------------
// Optimiser
// ---------------------------------------------------------------------------

namespace {

struct Optimiser {
  RewriteStats stats;
  std::unordered_map<const Node*, NodeRef> memo;

  NodeRef rewrite(const NodeRef& n) {
    auto it = memo.find(n.get());
    if (it != memo.end()) return it->second;

    // rewrite children first
    Node fresh = *n;
    bool changed = false;
    for (auto& a : fresh.args) {
      NodeRef r = rewrite(a);
      if (r != a) {
        a = std::move(r);
        changed = true;
      }
    }

    NodeRef result = changed ? make(std::move(fresh)) : n;

    // pass 1: collapse gather chains / drop identity gathers
    if (result->kind == OpKind::kGather) {
      const NodeRef& child = result->args[0];
      if (result->map.is_identity(result->shape.rank()) &&
          result->shape == child->shape) {
        stats.identities_removed += 1;
        memo[n.get()] = child;
        return child;
      }
      if (child->kind == OpKind::kGather &&
          composable(result->map, child->map) &&
          result->dflt == child->dflt) {
        AffineMap composed = compose_checked(result->map, child->map);
        if (collapse_exact(*result, *child, composed)) {
          Node merged = *result;
          merged.map = std::move(composed);
          merged.args = {child->args[0]};
          stats.gathers_collapsed += 1;
          NodeRef m = rewrite(make(std::move(merged)));  // may collapse further
          memo[n.get()] = m;
          return m;
        }
      }
    }

    memo[n.get()] = result;
    return result;
  }
};

// Parent multiplicity over the DAG (shared nodes materialise).
void count_parents(const Node* n, std::map<const Node*, int>& parents,
                   std::set<const Node*>& seen) {
  if (!seen.insert(n).second) return;
  for (const auto& a : n->args) {
    parents[a.get()] += 1;
    count_parents(a.get(), parents, seen);
  }
}

bool is_leaf(const Node* n) {
  return n->kind == OpKind::kInput || n->kind == OpKind::kConst;
}

}  // namespace

NodeRef optimise(const NodeRef& root, RewriteStats* stats) {
  SACPP_REQUIRE(root != nullptr, "optimise on null graph");
  Optimiser opt;
  opt.stats.materialisations_before = root->materialisation_count();
  NodeRef out = opt.rewrite(root);

  // account fusion: after optimisation the evaluator materialises only at
  // barriers — the root, stencil arguments, and shared intermediates.
  std::map<const Node*, int> parents;
  std::set<const Node*> seen;
  count_parents(out.get(), parents, seen);
  seen.insert(out.get());
  std::size_t barriers = 0;
  for (const Node* n : seen) {
    if (is_leaf(n)) continue;
    const bool shared = parents[n] > 1;
    bool stencil_arg = false;
    for (const Node* p : seen) {
      if (p->kind == OpKind::kStencil && p->args[0].get() == n) {
        stencil_arg = true;
      }
    }
    if (n == out.get() || shared || stencil_arg) ++barriers;
    // fused otherwise
  }
  opt.stats.materialisations_after = barriers;
  // nodes that remain in the optimised graph but evaluate fused into their
  // consumers (no materialisation of their own)
  std::uint64_t fused = 0;
  for (const Node* n : seen) {
    if (is_leaf(n) || n == out.get()) continue;
    const bool shared = parents[n] > 1;
    bool stencil_arg = false;
    for (const Node* p : seen) {
      if (p->kind == OpKind::kStencil && p->args[0].get() == n) {
        stencil_arg = true;
      }
    }
    if (!shared && !stencil_arg) ++fused;
  }
  opt.stats.ewise_fused = fused;
  if (stats) *stats = opt.stats;
  return out;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

namespace {

// A type-erased lazy array: shape + element function.
struct DynExpr {
  Shape shape;
  std::function<double(const IndexVec&)> at;
};

struct Evaluator {
  const Bindings& bindings;
  std::map<const Node*, int> parents;
  std::unordered_map<const Node*, Array<double>> materialised;

  explicit Evaluator(const NodeRef& root, const Bindings& b) : bindings(b) {
    std::set<const Node*> seen;
    count_parents(root.get(), parents, seen);
  }

  Array<double> to_array(const Node* n) {
    auto it = materialised.find(n);
    if (it != materialised.end()) return it->second;
    Array<double> a = [&] {
      if (n->kind == OpKind::kInput) {
        auto bit = bindings.find(n->name);
        SACPP_REQUIRE(bit != bindings.end(),
                      "unbound graph input: " + n->name);
        SACPP_REQUIRE(bit->second.shape() == n->shape,
                      "bound array shape mismatch for input " + n->name);
        return bit->second;
      }
      if (n->kind == OpKind::kStencil) {
        // stencil over a concrete array, forced through the fast kernel
        return relax_kernel(to_array(n->args[0].get()), n->coeffs);
      }
      const DynExpr e = compile_body(n);
      return with_genarray<double>(e.shape,
                                   [&e](const IndexVec& iv) { return e.at(iv); });
    }();
    materialised.emplace(n, a);
    return a;
  }

  // Barrier dispatch: inputs and shared intermediates materialise; the
  // rest fuse into their consumer's traversal.
  DynExpr compile(const Node* n) {
    const bool shared = parents[n] > 1 && !is_leaf(n);
    if (shared || n->kind == OpKind::kInput) {
      Array<double> a = to_array(n);
      return DynExpr{a.shape(),
                     [a](const IndexVec& iv) { return a[iv]; }};
    }
    return compile_body(n);
  }

  DynExpr compile_body(const Node* n) {
    switch (n->kind) {
      case OpKind::kConst: {
        const double v = n->value;
        return DynExpr{n->shape, [v](const IndexVec&) { return v; }};
      }
      case OpKind::kEwise: {
        if (n->args.size() == 2) {
          DynExpr l = compile(n->args[0].get());
          DynExpr r = compile(n->args[1].get());
          const EwiseFn fn = n->fn;
          return DynExpr{n->shape, [l, r, fn](const IndexVec& iv) {
                           const double x = l.at(iv), y = r.at(iv);
                           switch (fn) {
                             case EwiseFn::kAdd:
                               return x + y;
                             case EwiseFn::kSub:
                               return x - y;
                             case EwiseFn::kMul:
                               return x * y;
                             default:
                               return 0.0;
                           }
                         }};
        }
        DynExpr c = compile(n->args[0].get());
        const EwiseFn fn = n->fn;
        const double v = n->value;
        return DynExpr{n->shape, [c, fn, v](const IndexVec& iv) {
                         const double x = c.at(iv);
                         switch (fn) {
                           case EwiseFn::kNeg:
                             return -x;
                           case EwiseFn::kAbs:
                             return x < 0.0 ? -x : x;
                           case EwiseFn::kScale:
                             return x * v;
                           default:
                             return 0.0;
                         }
                       }};
      }
      case OpKind::kStencil: {
        // the argument materialises; the stencil itself stays lazy so
        // consumers (gathers, ewise) evaluate it per consumed point
        Array<double> a = to_array(n->args[0].get());
        auto st = std::make_shared<StencilExpr>(std::move(a), n->coeffs);
        return DynExpr{n->shape,
                       [st](const IndexVec& iv) { return (*st)(iv); }};
      }
      case OpKind::kGather: {
        DynExpr c = compile(n->args[0].get());
        const AffineMap m = n->map;
        const double dflt = n->dflt;
        const Shape child_shape = c.shape;
        return DynExpr{n->shape,
                       [c, m, dflt, child_shape](const IndexVec& iv) {
                         IndexVec src(iv.size());
                         for (std::size_t d = 0; d < iv.size(); ++d) {
                           const extent_t scaled = iv[d] * m.num + m.pre;
                           if (m.den != 1 &&
                               (scaled % m.den != 0 || scaled < 0)) {
                             return dflt;
                           }
                           src[d] = scaled / m.den + m.offset[d];
                         }
                         if (!child_shape.contains(src)) return dflt;
                         return c.at(src);
                       }};
      }
      case OpKind::kInput:
        break;  // handled above
    }
    SACPP_REQUIRE(false, "unreachable graph node kind");
    return {};
  }
};

}  // namespace

Array<double> evaluate(const NodeRef& root, const Bindings& bindings) {
  SACPP_REQUIRE(root != nullptr, "evaluate on null graph");
  Evaluator ev(root, bindings);
  return ev.to_array(root.get());
}

Array<double> evaluate_naive(const NodeRef& root, const Bindings& bindings) {
  SACPP_REQUIRE(root != nullptr, "evaluate on null graph");
  std::unordered_map<const Node*, Array<double>> memo;
  std::function<Array<double>(const Node*)> eval =
      [&](const Node* n) -> Array<double> {
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    Array<double> result = [&]() -> Array<double> {
      switch (n->kind) {
        case OpKind::kInput: {
          auto bit = bindings.find(n->name);
          SACPP_REQUIRE(bit != bindings.end(),
                        "unbound graph input: " + n->name);
          return bit->second;
        }
        case OpKind::kConst:
          return genarray_const(n->shape, n->value);
        case OpKind::kEwise: {
          Array<double> a = eval(n->args[0].get());
          if (n->args.size() == 2) {
            Array<double> b = eval(n->args[1].get());
            switch (n->fn) {
              case EwiseFn::kAdd:
                return a + b;
              case EwiseFn::kSub:
                return a - b;
              case EwiseFn::kMul:
                return a * b;
              default:
                break;
            }
          }
          switch (n->fn) {
            case EwiseFn::kNeg:
              return -a;
            case EwiseFn::kAbs:
              return sac::abs(a);
            case EwiseFn::kScale:
              return a * n->value;
            default:
              break;
          }
          SACPP_REQUIRE(false, "bad ewise arity");
          return a;
        }
        case OpKind::kStencil:
          return relax_kernel(eval(n->args[0].get()), n->coeffs);
        case OpKind::kGather: {
          Array<double> a = eval(n->args[0].get());
          const AffineMap& m = n->map;
          const double dflt = n->dflt;
          return with_genarray<double>(
              n->shape, gen_all(),
              [&a, &m, dflt](const IndexVec& iv) {
                IndexVec src(iv.size());
                for (std::size_t d = 0; d < iv.size(); ++d) {
                  const extent_t scaled = iv[d] * m.num + m.pre;
                  if (m.den != 1 && (scaled % m.den != 0 || scaled < 0)) {
                    return dflt;
                  }
                  src[d] = scaled / m.den + m.offset[d];
                }
                if (!a.shape().contains(src)) return dflt;
                return a[src];
              },
              dflt);
        }
      }
      SACPP_REQUIRE(false, "unreachable graph node kind");
      return Array<double>();
    }();
    memo.emplace(n, result);
    return result;
  };
  return eval(root.get());
}

}  // namespace sacpp::sac::wl
