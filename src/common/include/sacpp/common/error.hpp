#pragma once
// Error handling: contract checks that throw, and cheap debug assertions.
//
// Library entry points validate user-supplied shapes and indices with
// SACPP_REQUIRE (always on, throws sacpp::ContractError).  Hot inner loops use
// SACPP_ASSERT, which compiles away in release builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace sacpp {

// Thrown when a public-API precondition is violated (bad shape, rank
// mismatch, out-of-range index, ...).
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_failure(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  std::ostringstream os;
  os << "sacpp contract violation: " << msg << " [" << expr << "] at " << file
     << ':' << line;
  throw ContractError(os.str());
}

}  // namespace detail
}  // namespace sacpp

#define SACPP_REQUIRE(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::sacpp::detail::contract_failure(#cond, __FILE__, __LINE__, msg); \
    }                                                                    \
  } while (0)

#ifndef NDEBUG
#define SACPP_ASSERT(cond, msg) SACPP_REQUIRE(cond, msg)
#else
#define SACPP_ASSERT(cond, msg) \
  do {                          \
  } while (0)
#endif
