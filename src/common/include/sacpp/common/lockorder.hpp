#pragma once
// Lock-acquisition-order recording for the concurrency verifier
// (docs/static_analysis.md).
//
// A TrackedMutex is a drop-in std::mutex replacement (BasicLockable +
// Lockable, usable with std::lock_guard / std::unique_lock /
// std::condition_variable_any) that reports every acquisition to the
// process-global LockRegistry.  While tracing is enabled the registry
// maintains a happens-before lock graph: an edge A -> B is recorded whenever
// a thread acquires B while holding A.  A cycle in that graph is a potential
// deadlock — two threads that ever take the participating locks in opposite
// orders can wedge — and is detected *statically from the recorded orders*,
// even if no deadlock fires during the run.
//
// Layering: this lives in sacpp_common (not sacpp_check) so the layers below
// the checker — the buffer pool's depot shards, msg mailboxes, the serve
// dispatch/queue locks — can instrument their mutexes without a dependency
// cycle.  sacpp_check turns registry cycles into structured Diagnostics
// (sacpp/check/lockorder.hpp) and exports the graph via the obs exporters.
//
// Cost: tracing is off by default; each lock/unlock then pays one relaxed
// atomic load and a predictable branch (the same no-overhead discipline as
// SacConfig::check and obs probes).  While tracing, the holder stack is a
// thread-local vector and edge recording takes one internal (untracked)
// mutex.
//
// Locks sharing a constructor name share one graph node: the 8 pool depot
// shards are all "sac.pool.depot", every msg mailbox is "msg.mailbox".  The
// graph therefore speaks about lock *classes*; acquiring a second instance
// of a class already held is treated as re-entry on the shared node (no
// edge) — a class whose instances nest must impose its own instance order,
// which a class-level graph cannot check.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sacpp {

class LockRegistry {
 public:
  static LockRegistry& instance();

  // Id for a lock class name; the same name always returns the same id.
  int register_lock(const std::string& name);

  // Tracing switch.  Enabling mid-run is safe: locks already held when
  // tracing starts simply contribute no edges until released.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Called by TrackedMutex around the underlying mutex operations.
  void note_acquired(int id);
  void note_released(int id) noexcept;

  struct Edge {
    int from = 0;
    int to = 0;
    std::uint64_t count = 0;  // times the nesting was observed
  };

  std::vector<Edge> edges() const;
  std::size_t edge_count() const;
  std::size_t lock_count() const;
  std::string lock_name(int id) const;

  // Every distinct lock-order cycle found in the recorded graph, as a closed
  // id path (front() == back()).  Empty means the recorded orders admit a
  // total order — no deadlock is possible among the traced locks.
  std::vector<std::vector<int>> find_cycles() const;

  // Graphviz dump of the recorded graph (edge labels carry observation
  // counts; cycle edges are highlighted).
  std::string to_dot() const;

  // Forget recorded edges (lock names/ids persist, held stacks untouched) so
  // independent analysis windows do not bleed into each other.
  void reset_edges();

 private:
  LockRegistry() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  // guards names_ and edges_ (never tracked)
  std::vector<std::string> names_;
  std::vector<Edge> edges_;
};

// RAII tracing window: enables the registry on construction and restores the
// previous state on destruction (typically wrapped by check::LockOrderSession
// which also runs the cycle analysis).
class LockTraceScope {
 public:
  LockTraceScope()
      : prev_(LockRegistry::instance().enabled()) {
    LockRegistry::instance().set_enabled(true);
  }
  ~LockTraceScope() { LockRegistry::instance().set_enabled(prev_); }
  LockTraceScope(const LockTraceScope&) = delete;
  LockTraceScope& operator=(const LockTraceScope&) = delete;

 private:
  bool prev_;
};

// std::mutex with acquisition-order recording.  Satisfies Lockable, so it
// composes with the standard guards and std::condition_variable_any.
class TrackedMutex {
 public:
  explicit TrackedMutex(const char* name)
      : id_(LockRegistry::instance().register_lock(name)) {}

  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  void lock() {
    mutex_.lock();
    LockRegistry::instance().note_acquired(id_);
  }

  bool try_lock() {
    if (!mutex_.try_lock()) return false;
    LockRegistry::instance().note_acquired(id_);
    return true;
  }

  void unlock() {
    LockRegistry::instance().note_released(id_);
    mutex_.unlock();
  }

  int id() const noexcept { return id_; }

 private:
  std::mutex mutex_;
  int id_;
};

}  // namespace sacpp
