#pragma once
// Minimal SVG line charts — the figure binaries use this to emit actual
// figure files (speedup curves) next to their ASCII tables and CSVs.
// No dependencies; output is a self-contained .svg.

#include <string>
#include <utility>
#include <vector>

namespace sacpp {

class SvgChart {
 public:
  SvgChart(std::string title, std::string x_label, std::string y_label,
           int width = 760, int height = 480);

  // Add one polyline; points are (x, y) in data coordinates.
  void add_series(std::string name,
                  std::vector<std::pair<double, double>> points);

  // Optional reference line y = x ("linear speedup").
  void add_diagonal(std::string name);

  std::string render() const;

  // Write to file; no-op when path is empty.
  void write(const std::string& path) const;

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
  };

  std::string title_, x_label_, y_label_;
  int width_, height_;
  std::vector<Series> series_;
  bool diagonal_ = false;
  std::string diagonal_name_;
};

}  // namespace sacpp
