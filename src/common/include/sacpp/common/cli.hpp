#pragma once
// Minimal command-line option parser for the benchmark and example binaries.
//
// Supports `--key value`, `--key=value`, and boolean `--flag` forms.
// Unknown options are an error so typos in sweep scripts fail loudly.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sacpp {

class Cli {
 public:
  // Declare an option before parse(); `help` is shown by print_help().
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  // Parses argv; returns false (after printing help) on --help or error.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  void print_help(const std::string& program) const;

 private:
  struct Opt {
    std::string value;
    std::string help;
    bool is_flag = false;
    bool seen = false;
  };
  std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;
};

}  // namespace sacpp
