#pragma once
// Small inline vector used for shapes and index vectors.
//
// Array ranks in this library are almost always <= 4, so shape and index
// vectors are kept inline (no heap allocation) up to `InlineCap` elements and
// spill to the heap only beyond that.  The container is deliberately minimal:
// fixed-type, no erase/insert-in-middle, value semantics.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <type_traits>

#include "sacpp/common/error.hpp"

namespace sacpp {

template <typename T, std::size_t InlineCap = 4>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is designed for trivially copyable element types");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;

  SmallVec(std::size_t n, const T& fill = T{}) {
    resize(n, fill);
  }

  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  template <typename It>
    requires(!std::is_arithmetic_v<It>)  // do not hijack the fill constructor
  SmallVec(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  SmallVec(const SmallVec& other) { assign_from(other); }

  SmallVec(SmallVec&& other) noexcept {
    if (other.on_heap()) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = InlineCap;
      other.size_ = 0;
    } else {
      assign_from(other);
      other.size_ = 0;
    }
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      release();
      assign_from(other);
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      if (other.on_heap()) {
        heap_ = other.heap_;
        cap_ = other.cap_;
        size_ = other.size_;
        other.heap_ = nullptr;
        other.cap_ = InlineCap;
        other.size_ = 0;
      } else {
        assign_from(other);
        other.size_ = 0;
      }
    }
    return *this;
  }

  ~SmallVec() { release(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return cap_; }

  T* data() noexcept { return on_heap() ? heap_ : inline_; }
  const T* data() const noexcept { return on_heap() ? heap_ : inline_; }

  iterator begin() noexcept { return data(); }
  iterator end() noexcept { return data() + size_; }
  const_iterator begin() const noexcept { return data(); }
  const_iterator end() const noexcept { return data() + size_; }
  const_iterator cbegin() const noexcept { return begin(); }
  const_iterator cend() const noexcept { return end(); }

  T& operator[](std::size_t i) {
    SACPP_ASSERT(i < size_, "SmallVec index out of range");
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    SACPP_ASSERT(i < size_, "SmallVec index out of range");
    return data()[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t n) {
    if (n <= cap_) return;
    grow_to(n);
  }

  void resize(std::size_t n, const T& fill = T{}) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data()[i] = fill;
    size_ = n;
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow_to(cap_ * 2);
    data()[size_++] = v;
  }

  void pop_back() {
    SACPP_ASSERT(size_ > 0, "pop_back on empty SmallVec");
    --size_;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) {
    return !(a == b);
  }

 private:
  bool on_heap() const noexcept { return heap_ != nullptr; }

  void assign_from(const SmallVec& other) {
    reserve(other.size_);
    std::copy(other.begin(), other.end(), data());
    size_ = other.size_;
  }

  void grow_to(std::size_t n) {
    const std::size_t new_cap = std::max<std::size_t>(n, InlineCap * 2);
    T* fresh = new T[new_cap];
    std::copy(begin(), end(), fresh);
    release();
    heap_ = fresh;
    cap_ = new_cap;
  }

  void release() noexcept {
    delete[] heap_;
    heap_ = nullptr;
    cap_ = InlineCap;
  }

  T inline_[InlineCap] = {};
  T* heap_ = nullptr;
  std::size_t cap_ = InlineCap;
  std::size_t size_ = 0;
};

}  // namespace sacpp
