#pragma once
// ASCII table and CSV emission for the figure-reproduction binaries.
//
// Each bench binary prints a human-readable table (the "figure") to stdout
// and, with --csv <path>, the same data as CSV for plotting.

#include <string>
#include <vector>

namespace sacpp {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Convenience: format cells from doubles with fixed precision.
  static std::string fmt(double v, int precision = 3);

  // Scientific notation (for residual norms and similar tiny values).
  static std::string fmt_sci(double v, int precision = 6);

  // Render as aligned ASCII table.
  std::string to_ascii(const std::string& title = "") const;

  // Render as CSV (header + rows).
  std::string to_csv() const;

  // Write CSV to a file path; no-op when path is empty.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Render a horizontal ASCII bar chart line (used for speedup "figures").
std::string ascii_bar(double value, double max_value, int width = 40);

}  // namespace sacpp
