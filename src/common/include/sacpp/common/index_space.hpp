#pragma once
// Dense and strided index-space iteration (the "odometer").
//
// These walkers implement the index set of a WITH-loop generator:
//
//   { iv | forall d: lower[d] <= iv[d] < upper[d]
//          and (iv[d] - lower[d]) mod step[d] < width[d] }
//
// for_each_index calls fn(iv) for each member in row-major order.  The
// odometer mutates a single IndexVec in place, so no per-element allocation
// happens in the loop.

#include <cstdint>

#include "sacpp/common/error.hpp"
#include "sacpp/common/shape.hpp"

namespace sacpp {

// Number of selected positions along one axis of a strided generator.
inline extent_t grid_axis_count(extent_t lower, extent_t upper, extent_t step,
                                extent_t width) {
  if (upper <= lower) return 0;
  const extent_t span = upper - lower;
  const extent_t full = span / step;
  const extent_t rem = span % step;
  return full * width + (rem < width ? rem : width);
}

// Dense rectangular walk: lower <= iv < upper.
template <typename Fn>
void for_each_index(const IndexVec& lower, const IndexVec& upper, Fn&& fn) {
  const std::size_t rank = lower.size();
  SACPP_REQUIRE(upper.size() == rank, "generator bound ranks differ");
  for (std::size_t d = 0; d < rank; ++d) {
    if (upper[d] <= lower[d]) return;  // empty set
  }
  if (rank == 0) {
    // The rank-0 index set contains exactly the empty index vector
    // (vacuously satisfying the per-axis constraints).
    fn(IndexVec{});
    return;
  }
  IndexVec iv(lower.begin(), lower.end());
  for (;;) {
    fn(static_cast<const IndexVec&>(iv));
    std::size_t d = rank;
    while (d-- > 0) {
      if (++iv[d] < upper[d]) break;
      iv[d] = lower[d];
      if (d == 0) return;
    }
  }
}

// Dense walk over a full shape: 0 <= iv < shape.
template <typename Fn>
void for_each_index(const Shape& shape, Fn&& fn) {
  for_each_index(uniform_vec(shape.rank(), 0), shape.extents(),
                 std::forward<Fn>(fn));
}

// Strided/filtered walk: lower <= iv < upper with step/width grid filter.
template <typename Fn>
void for_each_index_grid(const IndexVec& lower, const IndexVec& upper,
                         const IndexVec& step, const IndexVec& width,
                         Fn&& fn) {
  const std::size_t rank = lower.size();
  SACPP_REQUIRE(upper.size() == rank && step.size() == rank &&
                    width.size() == rank,
                "generator vector ranks differ");
  for (std::size_t d = 0; d < rank; ++d) {
    SACPP_REQUIRE(step[d] >= 1, "generator step must be >= 1");
    SACPP_REQUIRE(width[d] >= 1 && width[d] <= step[d],
                  "generator width must be in [1, step]");
    if (grid_axis_count(lower[d], upper[d], step[d], width[d]) == 0) return;
  }
  if (rank == 0) {
    fn(IndexVec{});
    return;
  }

  IndexVec iv(lower.begin(), lower.end());
  // phase[d] = (iv[d] - lower[d]) mod step[d]; maintained incrementally.
  IndexVec phase(rank, 0);
  for (;;) {
    fn(static_cast<const IndexVec&>(iv));
    std::size_t d = rank;
    while (d-- > 0) {
      ++iv[d];
      if (++phase[d] == width[d]) {
        // jump over the gap between grid bands
        iv[d] += step[d] - width[d];
        phase[d] = 0;
      }
      if (iv[d] < upper[d]) break;
      iv[d] = lower[d];
      phase[d] = 0;
      if (d == 0) return;
    }
  }
}

// Total member count of a strided generator index set.
inline extent_t grid_count(const IndexVec& lower, const IndexVec& upper,
                           const IndexVec& step, const IndexVec& width) {
  extent_t n = 1;
  for (std::size_t d = 0; d < lower.size(); ++d) {
    n *= grid_axis_count(lower[d], upper[d], step[d], width[d]);
  }
  return n;  // rank 0: exactly the empty index vector
}

}  // namespace sacpp
