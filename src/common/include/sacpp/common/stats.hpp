#pragma once
// Summary statistics over repeated benchmark measurements.

#include <algorithm>
#include <cmath>
#include <vector>

#include "sacpp/common/error.hpp"

namespace sacpp {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

inline Summary summarize(std::vector<double> samples) {
  SACPP_REQUIRE(!samples.empty(), "summarize needs at least one sample");
  Summary s;
  s.count = samples.size();
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (double v : samples) ss += (v - s.mean) * (v - s.mean);
  s.stddev = n > 1 ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
  return s;
}

}  // namespace sacpp
