#pragma once
// Shapes and index vectors.
//
// A Shape is the extent vector of an n-dimensional array; an IndexVec is a
// position inside such an array.  Both are small inline vectors of signed
// 64-bit extents.  Signed extents keep index arithmetic (iv - pos, shape - 2)
// free of unsigned wrap-around bugs.
//
// The element-wise operators on IndexVec mirror the vector arithmetic the
// paper's SAC code performs on shapes, e.g. `shape(a) / str`,
// `shape(rc) + 1`, `0 * shape(rc)`.

#include <cstdint>
#include <numeric>
#include <ostream>
#include <string>

#include "sacpp/common/error.hpp"
#include "sacpp/common/small_vec.hpp"

namespace sacpp {

using extent_t = std::int64_t;
using IndexVec = SmallVec<extent_t, 4>;

// -- element-wise vector arithmetic ------------------------------------------

namespace detail {
template <typename Op>
IndexVec zip(const IndexVec& a, const IndexVec& b, Op op, const char* what) {
  SACPP_REQUIRE(a.size() == b.size(),
                std::string("length mismatch in vector ") + what);
  IndexVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = op(a[i], b[i]);
  return r;
}
}  // namespace detail

inline IndexVec operator+(const IndexVec& a, const IndexVec& b) {
  return detail::zip(a, b, [](extent_t x, extent_t y) { return x + y; }, "+");
}
inline IndexVec operator-(const IndexVec& a, const IndexVec& b) {
  return detail::zip(a, b, [](extent_t x, extent_t y) { return x - y; }, "-");
}
inline IndexVec operator*(const IndexVec& a, const IndexVec& b) {
  return detail::zip(a, b, [](extent_t x, extent_t y) { return x * y; }, "*");
}
inline IndexVec operator+(const IndexVec& a, extent_t s) {
  IndexVec r(a.begin(), a.end());
  for (auto& x : r) x += s;
  return r;
}
inline IndexVec operator-(const IndexVec& a, extent_t s) { return a + (-s); }
inline IndexVec operator*(extent_t s, const IndexVec& a) {
  IndexVec r(a.begin(), a.end());
  for (auto& x : r) x *= s;
  return r;
}
inline IndexVec operator*(const IndexVec& a, extent_t s) { return s * a; }
inline IndexVec operator/(const IndexVec& a, extent_t s) {
  SACPP_REQUIRE(s != 0, "division of index vector by zero");
  IndexVec r(a.begin(), a.end());
  for (auto& x : r) x /= s;
  return r;
}

// Uniform vector of a given rank (the scalar-replication rule of WITH-loop
// generators: a scalar bound is implicitly replicated to the needed rank).
inline IndexVec uniform_vec(std::size_t rank, extent_t value) {
  return IndexVec(rank, value);
}

// -- Shape --------------------------------------------------------------------

// The extent vector of an array.  Immutable after construction; provides
// row-major linearisation.
class Shape {
 public:
  Shape() = default;

  explicit Shape(IndexVec extents) : extents_(std::move(extents)) {
    for (extent_t e : extents_) {
      SACPP_REQUIRE(e >= 0, "array extents must be non-negative");
    }
  }

  Shape(std::initializer_list<extent_t> extents) : Shape(IndexVec(extents)) {}

  std::size_t rank() const noexcept { return extents_.size(); }

  extent_t extent(std::size_t axis) const {
    SACPP_REQUIRE(axis < rank(), "shape axis out of range");
    return extents_[axis];
  }

  extent_t operator[](std::size_t axis) const { return extent(axis); }

  const IndexVec& extents() const noexcept { return extents_; }

  // Total number of elements; the empty (rank-0) shape describes a scalar
  // with exactly one element.
  extent_t elem_count() const noexcept {
    extent_t n = 1;
    for (extent_t e : extents_) n *= e;
    return n;
  }

  bool is_scalar() const noexcept { return rank() == 0; }

  // Row-major strides: stride(last) == 1.
  IndexVec strides() const {
    IndexVec s(rank());
    extent_t acc = 1;
    for (std::size_t i = rank(); i-- > 0;) {
      s[i] = acc;
      acc *= extents_[i];
    }
    return s;
  }

  // Row-major linear offset of an index vector.
  extent_t linearize(const IndexVec& iv) const {
    SACPP_REQUIRE(iv.size() == rank(), "index rank does not match array rank");
    extent_t off = 0;
    for (std::size_t i = 0; i < rank(); ++i) {
      SACPP_ASSERT(iv[i] >= 0 && iv[i] < extents_[i], "index out of bounds");
      off = off * extents_[i] + iv[i];
    }
    return off;
  }

  // Inverse of linearize.
  IndexVec delinearize(extent_t off) const {
    SACPP_ASSERT(off >= 0 && off < elem_count(), "linear offset out of range");
    IndexVec iv(rank());
    for (std::size_t i = rank(); i-- > 0;) {
      iv[i] = off % extents_[i];
      off /= extents_[i];
    }
    return iv;
  }

  bool contains(const IndexVec& iv) const {
    if (iv.size() != rank()) return false;
    for (std::size_t i = 0; i < rank(); ++i) {
      if (iv[i] < 0 || iv[i] >= extents_[i]) return false;
    }
    return true;
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.extents_ == b.extents_;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

  std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank(); ++i) {
      if (i) s += ", ";
      s += std::to_string(extents_[i]);
    }
    return s + "]";
  }

  friend std::ostream& operator<<(std::ostream& os, const Shape& s) {
    return os << s.to_string();
  }

 private:
  IndexVec extents_;
};

// Cube shape: rank copies of n (the MG grids are cubes).
inline Shape cube_shape(std::size_t rank, extent_t n) {
  return Shape(uniform_vec(rank, n));
}

}  // namespace sacpp
