#pragma once
// Wall-clock timing helpers for the benchmark harness.

#include <chrono>
#include <cstdint>

namespace sacpp {

// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Time a callable once and return seconds.
template <typename Fn>
double time_seconds(Fn&& fn) {
  Timer t;
  fn();
  return t.elapsed_seconds();
}

}  // namespace sacpp
