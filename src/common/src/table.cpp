#include "sacpp/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sacpp/common/error.hpp"

namespace sacpp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  SACPP_REQUIRE(row.size() == header_.size(),
                "table row width does not match header");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string Table::to_ascii(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    return out + "\"";
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path);
  SACPP_REQUIRE(out.good(), "cannot open CSV output file: " + path);
  out << to_csv();
}

std::string ascii_bar(double value, double max_value, int width) {
  if (max_value <= 0.0) max_value = 1.0;
  int n = static_cast<int>(value / max_value * width + 0.5);
  n = std::clamp(n, 0, width);
  return std::string(static_cast<std::size_t>(n), '#') +
         std::string(static_cast<std::size_t>(width - n), ' ');
}

}  // namespace sacpp
