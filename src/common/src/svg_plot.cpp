#include "sacpp/common/svg_plot.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "sacpp/common/error.hpp"

namespace sacpp {

namespace {

const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                          "#9467bd", "#8c564b", "#17becf", "#7f7f7f"};

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// A humane tick step: 1, 2 or 5 times a power of ten.
double tick_step(double span, int target_ticks) {
  if (span <= 0.0) return 1.0;
  const double raw = span / target_ticks;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  if (norm <= 1.0) return mag;
  if (norm <= 2.0) return 2.0 * mag;
  if (norm <= 5.0) return 5.0 * mag;
  return 10.0 * mag;
}

std::string fmt_num(double v) {
  char buf[32];
  if (v == std::floor(v) && std::abs(v) < 1e7) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

}  // namespace

SvgChart::SvgChart(std::string title, std::string x_label,
                   std::string y_label, int width, int height)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      width_(width),
      height_(height) {}

void SvgChart::add_series(std::string name,
                          std::vector<std::pair<double, double>> points) {
  SACPP_REQUIRE(!points.empty(), "chart series needs at least one point");
  series_.push_back(Series{std::move(name), std::move(points)});
}

void SvgChart::add_diagonal(std::string name) {
  diagonal_ = true;
  diagonal_name_ = std::move(name);
}

std::string SvgChart::render() const {
  SACPP_REQUIRE(!series_.empty(), "chart needs at least one series");
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  if (diagonal_) ymax = std::max(ymax, xmax);
  ymin = std::min(ymin, 0.0);
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  const double ml = 64, mr = 170, mt = 48, mb = 56;  // margins
  const double pw = width_ - ml - mr, ph = height_ - mt - mb;
  auto X = [&](double x) { return ml + (x - xmin) / (xmax - xmin) * pw; };
  auto Y = [&](double y) { return mt + ph - (y - ymin) / (ymax - ymin) * ph; };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
     << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << ' '
     << height_ << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  os << "<text x=\"" << ml + pw / 2 << "\" y=\"24\" text-anchor=\"middle\" "
        "font-family=\"sans-serif\" font-size=\"15\" font-weight=\"bold\">"
     << escape(title_) << "</text>\n";

  // axes + grid + ticks
  os << "<g font-family=\"sans-serif\" font-size=\"11\" fill=\"#333\">\n";
  const double xstep = tick_step(xmax - xmin, 8);
  for (double x = std::ceil(xmin / xstep) * xstep; x <= xmax + 1e-9;
       x += xstep) {
    os << "<line x1=\"" << X(x) << "\" y1=\"" << mt << "\" x2=\"" << X(x)
       << "\" y2=\"" << mt + ph << "\" stroke=\"#e0e0e0\"/>\n";
    os << "<text x=\"" << X(x) << "\" y=\"" << mt + ph + 16
       << "\" text-anchor=\"middle\">" << fmt_num(x) << "</text>\n";
  }
  const double ystep = tick_step(ymax - ymin, 8);
  for (double y = std::ceil(ymin / ystep) * ystep; y <= ymax + 1e-9;
       y += ystep) {
    os << "<line x1=\"" << ml << "\" y1=\"" << Y(y) << "\" x2=\"" << ml + pw
       << "\" y2=\"" << Y(y) << "\" stroke=\"#e0e0e0\"/>\n";
    os << "<text x=\"" << ml - 8 << "\" y=\"" << Y(y) + 4
       << "\" text-anchor=\"end\">" << fmt_num(y) << "</text>\n";
  }
  os << "<line x1=\"" << ml << "\" y1=\"" << mt + ph << "\" x2=\"" << ml + pw
     << "\" y2=\"" << mt + ph << "\" stroke=\"#333\"/>\n";
  os << "<line x1=\"" << ml << "\" y1=\"" << mt << "\" x2=\"" << ml
     << "\" y2=\"" << mt + ph << "\" stroke=\"#333\"/>\n";
  os << "<text x=\"" << ml + pw / 2 << "\" y=\"" << height_ - 12
     << "\" text-anchor=\"middle\" font-size=\"12\">" << escape(x_label_)
     << "</text>\n";
  os << "<text x=\"16\" y=\"" << mt + ph / 2
     << "\" text-anchor=\"middle\" font-size=\"12\" transform=\"rotate(-90 "
        "16 "
     << mt + ph / 2 << ")\">" << escape(y_label_) << "</text>\n";
  os << "</g>\n";

  if (diagonal_) {
    const double hi = std::min(xmax, ymax);
    os << "<line x1=\"" << X(xmin) << "\" y1=\"" << Y(xmin) << "\" x2=\""
       << X(hi) << "\" y2=\"" << Y(hi)
       << "\" stroke=\"#999\" stroke-dasharray=\"5,4\"/>\n";
  }

  // series
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const auto& s = series_[i];
    const char* color = kPalette[i % (sizeof(kPalette) / sizeof(*kPalette))];
    os << "<polyline fill=\"none\" stroke=\"" << color
       << "\" stroke-width=\"2\" points=\"";
    for (const auto& [x, y] : s.points) {
      os << X(x) << ',' << Y(y) << ' ';
    }
    os << "\"/>\n";
    for (const auto& [x, y] : s.points) {
      os << "<circle cx=\"" << X(x) << "\" cy=\"" << Y(y)
         << "\" r=\"3\" fill=\"" << color << "\"/>\n";
    }
  }

  // legend
  os << "<g font-family=\"sans-serif\" font-size=\"12\">\n";
  double ly = mt + 8;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const char* color = kPalette[i % (sizeof(kPalette) / sizeof(*kPalette))];
    os << "<line x1=\"" << ml + pw + 12 << "\" y1=\"" << ly << "\" x2=\""
       << ml + pw + 34 << "\" y2=\"" << ly << "\" stroke=\"" << color
       << "\" stroke-width=\"2\"/>\n";
    os << "<text x=\"" << ml + pw + 40 << "\" y=\"" << ly + 4 << "\">"
       << escape(series_[i].name) << "</text>\n";
    ly += 20;
  }
  if (diagonal_) {
    os << "<line x1=\"" << ml + pw + 12 << "\" y1=\"" << ly << "\" x2=\""
       << ml + pw + 34 << "\" y2=\"" << ly
       << "\" stroke=\"#999\" stroke-dasharray=\"5,4\"/>\n";
    os << "<text x=\"" << ml + pw + 40 << "\" y=\"" << ly + 4 << "\">"
       << escape(diagonal_name_) << "</text>\n";
  }
  os << "</g>\n</svg>\n";
  return os.str();
}

void SvgChart::write(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path);
  SACPP_REQUIRE(out.good(), "cannot open SVG output file: " + path);
  out << render();
}

}  // namespace sacpp
