#include "sacpp/common/lockorder.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace sacpp {

namespace {

// Locks the calling thread currently holds, outermost first.  Release erases
// by value (unlock order need not mirror lock order), and an id that was
// acquired before tracing began is simply absent — note_released tolerates
// that.
thread_local std::vector<int> tl_held;

}  // namespace

LockRegistry& LockRegistry::instance() {
  static LockRegistry* registry = new LockRegistry();  // never destroyed:
  // TrackedMutexes with static storage duration unlock during shutdown.
  return *registry;
}

int LockRegistry::register_lock(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  names_.push_back(name);
  return static_cast<int>(names_.size() - 1);
}

void LockRegistry::note_acquired(int id) {
  if (!enabled()) return;
  if (!tl_held.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int held : tl_held) {
      if (held == id) continue;  // re-entry on the shared class node
      auto it = std::find_if(edges_.begin(), edges_.end(), [&](const Edge& e) {
        return e.from == held && e.to == id;
      });
      if (it != edges_.end()) {
        it->count += 1;
      } else {
        edges_.push_back(Edge{held, id, 1});
      }
    }
  }
  tl_held.push_back(id);
}

void LockRegistry::note_released(int id) noexcept {
  if (!enabled()) return;
  for (auto it = tl_held.rbegin(); it != tl_held.rend(); ++it) {
    if (*it == id) {
      tl_held.erase(std::next(it).base());
      return;
    }
  }
  // Acquired before tracing started: nothing to pop.
}

std::vector<LockRegistry::Edge> LockRegistry::edges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return edges_;
}

std::size_t LockRegistry::edge_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return edges_.size();
}

std::size_t LockRegistry::lock_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return names_.size();
}

std::string LockRegistry::lock_name(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<std::size_t>(id) >= names_.size()) return "?";
  return names_[static_cast<std::size_t>(id)];
}

void LockRegistry::reset_edges() {
  std::lock_guard<std::mutex> lock(mutex_);
  edges_.clear();
}

// Cycle enumeration: depth-first search over the recorded graph from every
// node, reporting each closed path once (canonicalised by its smallest node
// id so A->B->A and B->A->B are the same finding).  Lock graphs here are a
// dozen nodes, so the simple exponential walk is fine and yields the actual
// paths (which the diagnostics print), not just SCC membership.
std::vector<std::vector<int>> LockRegistry::find_cycles() const {
  std::map<int, std::vector<int>> adj;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Edge& e : edges_) adj[e.from].push_back(e.to);
  }
  std::vector<std::vector<int>> cycles;
  std::set<std::vector<int>> seen;

  for (const auto& [start, _] : adj) {
    std::vector<int> path{start};
    std::set<int> on_path{start};
    // Iterative DFS with explicit branch indices.
    std::vector<std::size_t> branch{0};
    while (!path.empty()) {
      const int node = path.back();
      auto it = adj.find(node);
      if (it == adj.end() || branch.back() >= it->second.size()) {
        on_path.erase(node);
        path.pop_back();
        branch.pop_back();
        continue;
      }
      const int next = it->second[branch.back()++];
      if (next == start) {
        // Closed cycle: canonicalise by rotating the smallest id first.
        std::vector<int> cyc = path;
        const auto min_it = std::min_element(cyc.begin(), cyc.end());
        std::rotate(cyc.begin(), min_it, cyc.end());
        if (seen.insert(cyc).second) {
          cyc.push_back(cyc.front());
          cycles.push_back(std::move(cyc));
        }
        continue;
      }
      if (on_path.count(next) != 0) continue;  // cycle not through start
      path.push_back(next);
      on_path.insert(next);
      branch.push_back(0);
    }
  }
  return cycles;
}

std::string LockRegistry::to_dot() const {
  const std::vector<Edge> es = edges();
  std::set<std::pair<int, int>> cycle_edges;
  for (const auto& cyc : find_cycles()) {
    for (std::size_t i = 0; i + 1 < cyc.size(); ++i) {
      cycle_edges.insert({cyc[i], cyc[i + 1]});
    }
  }
  std::set<int> nodes;
  for (const Edge& e : es) {
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  std::ostringstream out;
  out << "digraph lock_order {\n";
  out << "  // A -> B: B was acquired while A was held.  Red edges sit on a\n";
  out << "  // lock-order cycle (potential deadlock).\n";
  out << "  rankdir=LR;\n";
  for (int n : nodes) {
    out << "  n" << n << " [label=\"" << lock_name(n) << "\"];\n";
  }
  for (const Edge& e : es) {
    out << "  n" << e.from << " -> n" << e.to << " [label=\"" << e.count
        << '"';
    if (cycle_edges.count({e.from, e.to}) != 0) {
      out << ", color=red, penwidth=2";
    }
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace sacpp
