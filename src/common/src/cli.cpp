#include "sacpp/common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "sacpp/common/error.hpp"

namespace sacpp {

void Cli::add_option(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  SACPP_REQUIRE(!opts_.count(name), "duplicate CLI option: " + name);
  opts_[name] = Opt{default_value, help, /*is_flag=*/false, /*seen=*/false};
  order_.push_back(name);
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  SACPP_REQUIRE(!opts_.count(name), "duplicate CLI flag: " + name);
  opts_[name] = Opt{"0", help, /*is_flag=*/true, /*seen=*/false};
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   arg.c_str());
      print_help(argv[0]);
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = opts_.find(arg);
    if (it == opts_.end()) {
      std::fprintf(stderr, "unknown option: --%s\n", arg.c_str());
      print_help(argv[0]);
      return false;
    }
    Opt& opt = it->second;
    if (opt.is_flag) {
      opt.value = has_value ? value : "1";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "option --%s needs a value\n", arg.c_str());
          return false;
        }
        value = argv[++i];
      }
      opt.value = value;
    }
    opt.seen = true;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = opts_.find(name);
  SACPP_REQUIRE(it != opts_.end(), "undeclared CLI option: " + name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool Cli::get_flag(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes";
}

void Cli::print_help(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [options]\n", program.c_str());
  for (const auto& name : order_) {
    const Opt& o = opts_.at(name);
    if (o.is_flag) {
      std::fprintf(stderr, "  --%-22s %s\n", name.c_str(), o.help.c_str());
    } else {
      std::fprintf(stderr, "  --%-22s %s (default: %s)\n",
                   (name + " <v>").c_str(), o.help.c_str(), o.value.c_str());
    }
  }
}

}  // namespace sacpp
